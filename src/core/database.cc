#include "core/database.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <limits>
#include <mutex>
#include <unordered_set>
#include <utility>

#include "base/string_util.h"
#include "core/replication_history.h"
#include "formula/formula.h"

namespace dominodb {

namespace {

std::atomic<uint64_t> g_open_counter{1};

/// Thread-local write-lock ownership token: one entry per database this
/// thread currently holds exclusively. `depth` counts nested guard
/// acquisitions (public mutators call each other). The vector is tiny — a
/// thread rarely holds more than one database (a cluster observer
/// applying to a peer holds zero: notifications fire outside the lock).
struct LockToken {
  const void* db;
  int depth;
};

thread_local std::vector<LockToken> t_lock_tokens;

LockToken* FindToken(const void* db) {
  for (LockToken& token : t_lock_tokens) {
    if (token.db == db) return &token;
  }
  return nullptr;
}

void PopToken(const void* db) {
  for (auto it = t_lock_tokens.begin(); it != t_lock_tokens.end(); ++it) {
    if (it->db == db) {
      t_lock_tokens.erase(it);
      return;
    }
  }
}

/// Thread-local pin token: the snapshot epoch this thread's outermost
/// ReadTxn pinned on a database. Nested ReadTxns join it, which is what
/// makes @DbLookup inside FormulaSearch (and any other re-entrant read)
/// repeatable — every step of the enclosing read resolves at one epoch.
struct PinToken {
  const void* db;
  Epoch epoch;
  int depth;
};

thread_local std::vector<PinToken> t_pin_tokens;

PinToken* FindPin(const void* db) {
  for (PinToken& pin : t_pin_tokens) {
    if (pin.db == db) return &pin;
  }
  return nullptr;
}

void PopPin(const void* db) {
  for (auto it = t_pin_tokens.begin(); it != t_pin_tokens.end(); ++it) {
    if (it->db == db) {
      t_pin_tokens.erase(it);
      return;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Write lock (writer-writer serialization; readers never come here)
// ---------------------------------------------------------------------------

void Database::AcquireWrite() const {
  LockToken* token = FindToken(this);
  if (token != nullptr) {
    ++token->depth;
    return;
  }
  mu_.Lock();
  t_lock_tokens.push_back({this, 1});
}

bool Database::TryAcquireWrite() const {
  LockToken* token = FindToken(this);
  if (token != nullptr) {
    ++token->depth;
    return true;
  }
  if (!mu_.TryLock()) return false;
  t_lock_tokens.push_back({this, 1});
  return true;
}

void Database::ReleaseWrite() const {
  LockToken* token = FindToken(this);
  if (--token->depth == 0) {
    PopToken(this);
    mu_.Unlock();
  }
}

bool Database::ThisThreadHoldsWrite() const {
  return FindToken(this) != nullptr;
}

// ---------------------------------------------------------------------------
// Snapshot pinning (Database::ReadTxn)
// ---------------------------------------------------------------------------

Database::ReadTxn::ReadTxn(const Database* db, bool catch_up) : db_(db) {
  if (db_->ThisThreadHoldsWrite()) {
    // A read on the thread that holds the write lock (a mutator
    // re-entering a read path, or @DbLookup inside a formula a writer
    // evaluates) runs in latest mode: it must see this thread's own
    // uncommitted writes, not a snapshot that excludes them.
    epoch_ = kEpochLatest;
    if (catch_up) {
      Status status = db_->FlushIndexesInternal();
      if (!status.ok()) {
        db_->registry_->events().Log(stats::Severity::kWarning, "Indexer",
                                     "read catch-up: " + status.message());
      }
    }
    return;
  }
  if (PinToken* pin = FindPin(db_)) {
    ++pin->depth;
    epoch_ = pin->epoch;
  } else {
    epoch_ = db_->mvcc_.Pin();
    t_pin_tokens.push_back({db_, epoch_, 1});
    pinned_ = true;
  }
  if (catch_up) {
    // Bring views / full-text up to the pin. An outer txn may have pinned
    // with catch_up=false (store-only read) before this nested view read.
    Status status = db_->CatchUpIndexes(epoch_);
    if (!status.ok()) {
      db_->registry_->events().Log(stats::Severity::kWarning, "Indexer",
                                   "read catch-up: " + status.message());
    }
  }
}

Database::ReadTxn::~ReadTxn() {
  if (epoch_ == kEpochLatest) return;  // latest mode never pinned
  PinToken* pin = FindPin(db_);
  --pin->depth;
  if (!pinned_) return;  // nested: the outer txn owns the pin
  PopPin(db_);
  db_->mvcc_.Unpin(epoch_);
  if (db_->mvcc_.pinned_count() == 0) {
    // Last reader out sweeps the view zombies its pin kept alive, so a
    // quiescent database carries no versioned residue.
    db_->ReclaimIndexVersions();
  }
}

// ---------------------------------------------------------------------------
// Write guards
// ---------------------------------------------------------------------------

/// Exclusive hold for internal state changes that advance no commit epoch
/// and produce no observer notifications (index attach, checkpoints,
/// compaction slices, ...).
class SCOPED_CAPABILITY Database::WriteGuard {
 public:
  explicit WriteGuard(const Database* db) ACQUIRE(db->mu_) : db_(db) {
    db_->AcquireWrite();
  }
  ~WriteGuard() RELEASE() { db_->ReleaseWrite(); }
  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;

 private:
  const Database* db_;
};

/// Scope guard for public mutators: holds the write lock, and the
/// OUTERMOST guard on this thread brackets the commit — it opens the
/// commit epoch on entry and publishes it on exit, after every nested
/// sub-mutation has applied and recorded its pre-images. Observer
/// notifications fire after release, so an observer may lock a peer
/// database without creating a lock order between the two.
class SCOPED_CAPABILITY Database::MutationGuard {
 public:
  explicit MutationGuard(Database* db) ACQUIRE(db->mu_) : db_(db) {
    db_->AcquireWrite();
    if (++db_->mutation_depth_ == 1) {
      db_->commit_epoch_ = db_->mvcc_.BeginCommit();
    }
  }
  ~MutationGuard() RELEASE() {
    const bool outermost = --db_->mutation_depth_ == 0;
    if (outermost) {
      db_->mvcc_.Publish(db_->commit_epoch_);
      db_->commit_epoch_ = kEpochNone;
      // Piggyback view-zombie reclamation on the commit: drops whatever
      // rows the (possibly advanced) reclaim floor no longer protects.
      db_->ReclaimIndexVersions();
    }
    db_->ReleaseWrite();
    if (outermost) db_->DrainNotifications();
  }
  MutationGuard(const MutationGuard&) = delete;
  MutationGuard& operator=(const MutationGuard&) = delete;

 private:
  Database* db_;
};

void Database::DrainNotifications() {
  // An observer's own writes re-enter here; the outer drain on this
  // thread finishes the queue, so just return.
  if (notify_drainer_.load(std::memory_order_relaxed) ==
      std::this_thread::get_id()) {
    return;
  }
  for (;;) {
    {
      MutexLock lock(&notify_mu_);
      if (pending_notify_.empty()) return;
    }
    if (!notify_drain_mu_.try_lock()) {
      // Another thread is draining; wait for it to flush our events too
      // (or to exit, in which case we take over).
      std::this_thread::yield();
      continue;
    }
    std::lock_guard<std::mutex> drain_guard(notify_drain_mu_,
                                            std::adopt_lock);
    notify_drainer_.store(std::this_thread::get_id(),
                          std::memory_order_relaxed);
    for (;;) {
      std::vector<PendingNotify> batch;
      std::vector<DatabaseObserver*> observers;
      {
        MutexLock lock(&notify_mu_);
        if (pending_notify_.empty()) break;
        batch.swap(pending_notify_);
        observers = observers_;
      }
      for (const PendingNotify& n : batch) {
        for (DatabaseObserver* obs : observers) {
          if (n.erased_id != kInvalidNoteId) {
            obs->OnNoteErased(n.erased_id);
          } else {
            obs->OnNoteChanged(n.note);
          }
        }
      }
    }
    notify_drainer_.store(std::thread::id(), std::memory_order_relaxed);
  }
}

Database::~Database() {
  // Stop the background drain before any member is torn down: Close waits
  // for in-flight pool callbacks, which may still touch views/full-text
  // until it returns.
  std::shared_ptr<indexer::IndexerTask> task = SnapshotIndexer();
  if (task != nullptr) task->Close();
}

// ---------------------------------------------------------------------------
// Catalog snapshots
// ---------------------------------------------------------------------------

std::shared_ptr<ViewIndex> Database::FindViewShared(
    std::string_view name) const {
  MutexLock lock(&catalog_mu_);
  auto it = views_.find(ToLower(name));
  return it == views_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<ViewIndex>> Database::SnapshotViews() const {
  MutexLock lock(&catalog_mu_);
  std::vector<std::shared_ptr<ViewIndex>> out;
  out.reserve(views_.size());
  for (const auto& [key, view] : views_) out.push_back(view);
  return out;
}

std::shared_ptr<FullTextIndex> Database::SnapshotFulltext() const {
  MutexLock lock(&catalog_mu_);
  return fulltext_;
}

std::shared_ptr<indexer::IndexerTask> Database::SnapshotIndexer() const {
  MutexLock lock(&catalog_mu_);
  return indexer_;
}

// ---------------------------------------------------------------------------
// Background indexer
// ---------------------------------------------------------------------------

void Database::AttachIndexer(indexer::ThreadPool* pool) {
  {
    MutexLock lock(&catalog_mu_);
    if (indexer_pool_ == pool) return;
  }
  // Detach the current task first: exclude writers (they enqueue under
  // the write lock), flush remaining events, then wait out in-flight
  // callbacks so a stale drain never races the replacement.
  std::shared_ptr<indexer::IndexerTask> old;
  {
    WriteGuard lock(this);
    FlushIndexesInternal().ok();
    MutexLock cat(&catalog_mu_);
    old = std::move(indexer_);
    indexer_ = nullptr;
    indexer_pool_ = nullptr;
  }
  if (old != nullptr) old->Close();
  old.reset();
  WriteGuard lock(this);
  MutexLock cat(&catalog_mu_);
  indexer_pool_ = pool;
  if (pool != nullptr) {
    indexer_ = std::make_shared<indexer::IndexerTask>(
        pool,
        [this](indexer::IndexerTask* task) { BackgroundIndexDrain(task); },
        registry_);
  }
}

Status Database::FlushIndexes() { return FlushIndexesInternal(); }

Status Database::FlushIndexesInternal() const {
  std::shared_ptr<indexer::IndexerTask> task = SnapshotIndexer();
  if (task == nullptr) return Status::Ok();
  Status status = Status::Ok();
  task->DrainInline([this, &status](const indexer::NoteChange& change) {
    Status s = ApplyIndexEvent(change);
    if (status.ok() && !s.ok()) status = s;
  });
  return status;
}

Status Database::CatchUpIndexes(Epoch max_epoch) const {
  std::shared_ptr<indexer::IndexerTask> task = SnapshotIndexer();
  if (task == nullptr) return Status::Ok();
  Status status = Status::Ok();
  task->CatchUp(max_epoch,
                [this, &status](const indexer::NoteChange& change) {
                  Status s = ApplyIndexEvent(change);
                  if (status.ok() && !s.ok()) status = s;
                });
  return status;
}

bool Database::HasPendingIndexWork() const {
  std::shared_ptr<indexer::IndexerTask> task = SnapshotIndexer();
  return task != nullptr && task->HasPending();
}

Status Database::ApplyIndexEvent(const indexer::NoteChange& change) const {
  std::vector<std::shared_ptr<ViewIndex>> views = SnapshotViews();
  std::shared_ptr<FullTextIndex> ft = SnapshotFulltext();
  if (change.kind == indexer::ChangeKind::kErased || change.note == nullptr) {
    for (const auto& view : views) view->Remove(change.id, change.epoch);
    if (ft != nullptr) ft->RemoveNote(change.id);
    return Status::Ok();
  }
  for (const auto& view : views) {
    DOMINO_RETURN_IF_ERROR(view->Update(*change.note, this, change.epoch));
  }
  if (ft != nullptr) ft->IndexNote(*change.note);
  return Status::Ok();
}

void Database::BackgroundIndexDrain(indexer::IndexerTask* task) {
  {
    MutexLock lock(&catalog_mu_);
    if (task != indexer_.get()) return;  // detached while queued
  }
  // Draining needs no database lock: appliers serialize on the indexer's
  // apply mutex, events carry their note state, and the indexes are
  // internally synchronized.
  Status status = Status::Ok();
  task->DrainInline([this, &status](const indexer::NoteChange& change) {
    Status s = ApplyIndexEvent(change);
    if (status.ok() && !s.ok()) status = s;
  });
  if (!status.ok()) {
    registry_->events().Log(stats::Severity::kWarning, "Indexer",
                            "background drain: " + status.message());
  }
  // Idle-time threshold maintenance: store writers serialize on the
  // write lock, so take it — but never block a pool worker on a busy
  // database; the next drain retries.
  if (!TryAcquireWrite()) return;
  Status comp = store_->MaybeCompact();
  if (!comp.ok()) {
    registry_->events().Log(stats::Severity::kWarning, "Store",
                            "background compact: " + comp.message());
  }
  Status ckpt = store_->MaybeCheckpoint();
  if (!ckpt.ok()) {
    registry_->events().Log(stats::Severity::kWarning, "Store",
                            "background checkpoint: " + ckpt.message());
  }
  ReleaseWrite();
}

// ---------------------------------------------------------------------------
// Open / design state
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Database>> Database::Open(
    const std::string& dir, const DatabaseOptions& options,
    const Clock* clock) {
  uint64_t seed = options.unid_seed != 0
                      ? options.unid_seed
                      : Fnv1a64(dir) ^
                            Mix64(g_open_counter.fetch_add(1));
  stats::StatRegistry* registry = options.stats != nullptr
                                      ? options.stats
                                      : &stats::StatRegistry::Global();
  std::unique_ptr<Database> db(new Database(clock, seed, registry));
  // Still single-threaded; the guard exists for the static analysis and
  // costs one uncontended lock.
  WriteGuard setup(db.get());
  DatabaseInfo default_info;
  default_info.title = options.title;
  default_info.purge_interval = options.purge_interval;
  if (options.replica_id.IsNull()) {
    default_info.replica_id = Unid{db->rng_.Next(), db->rng_.Next()};
  } else {
    default_info.replica_id = options.replica_id;
  }
  StoreOptions store_options = options.store;
  if (store_options.stats == nullptr) store_options.stats = registry;
  DOMINO_ASSIGN_OR_RETURN(db->store_,
                          NoteStore::Open(dir, store_options, default_info));
  db->LoadDesignState();
  return db;
}

void Database::LoadDesignState() {
  // Children index + design notes (ACL, views) from the store.
  store_->ForEach([&](const Note& note) {
    if (!note.deleted() && !note.parent_unid().IsNull()) {
      MutexLock lock(&catalog_mu_);
      children_[note.parent_unid()].insert(note.id());
    }
    if (note.deleted()) return;
    if (note.note_class() == NoteClass::kAcl) {
      auto acl = Acl::FromNote(note);
      if (acl.ok()) {
        MutexLock lock(&acl_mu_);
        acl_ = std::move(*acl);
        acl_note_id_ = note.id();
      }
    }
  });
  // Views need a second pass so the children index is complete before
  // the rebuild walks response hierarchies.
  store_->ForEach([&](const Note& note) {
    if (!note.deleted() && note.note_class() == NoteClass::kView) {
      ApplyDesignNote(note).ok();
    }
  });
}

Unid Database::GenerateUnid() {
  for (;;) {
    Unid unid{rng_.Next(), rng_.Next()};
    if (!unid.IsNull() && !store_->ContainsUnid(unid)) return unid;
  }
}

Micros Database::StampTime() {
  // Sequence times double as version identifiers during replication, so
  // two replicas must never stamp the same microsecond. Real deployments
  // rely on clock skew; under a shared SimClock we reproduce the skew by
  // giving each database instance a distinct sub-millisecond residue.
  Micros t = clock_ != nullptr ? clock_->Now() : 0;
  t = t - (t % 1000) + stamp_salt_;
  const Micros last = last_stamp_.load(std::memory_order_relaxed);
  if (t <= last) {
    t = last + 1000;  // next millisecond tick, same residue
  }
  last_stamp_.store(t, std::memory_order_release);
  return t;
}

// ---------------------------------------------------------------------------
// Snapshot resolution
// ---------------------------------------------------------------------------

void Database::RecordPreImage(NoteId id) {
  mvcc_.Record(id, commit_epoch_, store_->Find(id));
}

NoteHandle Database::ResolveAt(NoteId id, Epoch at) const {
  // Fetch the store state BEFORE consulting the overlay: a racing commit
  // records its pre-image before it touches the store, so whichever
  // interleaving this read observes, one of the two sources carries the
  // state at `at` — and Lookup tells us which.
  NoteHandle current = store_->Find(id);
  MvccSnapshots::Resolution r = mvcc_.Lookup(id, at);
  switch (r.verdict) {
    case MvccSnapshots::Verdict::kUseStore:
      return current;
    case MvccSnapshots::Verdict::kVersion:
      return r.note;
    case MvccSnapshots::Verdict::kAbsent:
      return nullptr;
  }
  return nullptr;
}

NoteHandle Database::ResolveUnidAt(const Unid& unid, Epoch at) const {
  NoteHandle current = store_->FindByUnid(unid);
  if (current != nullptr) return ResolveAt(current->id(), at);
  // Not in the store — never existed, or purged after the pin; the
  // overlay remembers the UNID binding of every recorded pre-image.
  std::optional<NoteId> id = mvcc_.LookupUnid(unid);
  if (!id.has_value()) return nullptr;
  return ResolveAt(*id, at);
}

void Database::ScanAt(Epoch at,
                      const std::function<void(const Note&)>& fn) const {
  if (at == kEpochLatest) {  // latest mode: the store is the truth
    store_->ForEach(fn);
    return;
  }
  // Pass 1: every note the store still holds, resolved through the
  // overlay. Pass 2: overlay versions whose note the store purged after
  // the pin. OverlayIds is taken AFTER the scan so a purge that raced
  // pass 1 (pre-image recorded before the erase) is guaranteed visible
  // to pass 2; `seen` keeps the two passes disjoint.
  std::unordered_set<NoteId> seen;
  store_->ForEach([&](const Note& note) {
    seen.insert(note.id());
    MvccSnapshots::Resolution r = mvcc_.Lookup(note.id(), at);
    switch (r.verdict) {
      case MvccSnapshots::Verdict::kUseStore:
        fn(note);
        break;
      case MvccSnapshots::Verdict::kVersion:
        if (r.note != nullptr) fn(*r.note);
        break;
      case MvccSnapshots::Verdict::kAbsent:
        break;
    }
  });
  for (NoteId id : mvcc_.OverlayIds()) {
    if (seen.count(id) != 0) continue;
    MvccSnapshots::Resolution r = mvcc_.Lookup(id, at);
    if (r.verdict == MvccSnapshots::Verdict::kVersion && r.note != nullptr) {
      fn(*r.note);
    }
  }
}

void Database::ReclaimIndexVersions() const {
  const Epoch floor = mvcc_.ReclaimFloor();
  for (const auto& view : SnapshotViews()) view->ReclaimVersions(floor);
}

// ---------------------------------------------------------------------------
// Security
// ---------------------------------------------------------------------------

Acl Database::acl() const {
  MutexLock lock(&acl_mu_);
  return acl_;
}

Status Database::SetAcl(const Acl& acl) {
  MutationGuard guard(this);
  Note note = acl.ToNote();
  NoteId acl_id;
  {
    MutexLock lock(&acl_mu_);
    acl_id = acl_note_id_;
  }
  if (acl_id != kInvalidNoteId) {
    auto existing = store_->Get(acl_id);
    if (existing.ok()) {
      note.set_id(acl_id);
      note.SetReplicationState(existing->oid(), existing->revisions(),
                               existing->created(), false);
      note.BumpSequence(StampTime());
      note.set_modified_in_file(StampTime());
      RecordPreImage(acl_id);
      DOMINO_RETURN_IF_ERROR(store_->Put(&note));
      return AfterChange(note);
    }
  }
  note.StampCreated(GenerateUnid(), StampTime());
  note.set_modified_in_file(StampTime());
  note.set_id(store_->AllocateId());
  RecordPreImage(note.id());
  DOMINO_RETURN_IF_ERROR(store_->Put(&note));
  return AfterChange(note);  // ApplyDesignNote records the new acl note id
}

Status Database::SetAclAs(const Principal& who, const Acl& acl) {
  MutationGuard guard(this);
  if (!CanChangeAcl(this->acl(), who)) {
    return Status::PermissionDenied(who.name + " lacks Manager access");
  }
  return SetAcl(acl);
}

// ---------------------------------------------------------------------------
// CRUD
// ---------------------------------------------------------------------------

Result<NoteId> Database::CreateNote(Note note) {
  MutationGuard guard(this);
  // Pre-assign the id so the absent pre-image is on record before the
  // store sees the note (readers pinned before this commit then resolve
  // the id to "did not exist").
  note.set_id(store_->AllocateId());
  note.StampCreated(GenerateUnid(), StampTime());
  note.StampItemModifications(nullptr, note.sequence_time());
  note.set_modified_in_file(StampTime());
  RecordPreImage(note.id());
  DOMINO_RETURN_IF_ERROR(store_->Put(&note));
  DOMINO_RETURN_IF_ERROR(AfterChange(note));
  return note.id();
}

Status Database::UpdateNote(Note note) {
  MutationGuard guard(this);
  NoteHandle existing = store_->Find(note.id());
  if (existing == nullptr || existing->deleted()) {
    return Status::NotFound(StrPrintf("note %u", note.id()));
  }
  if (existing->unid() != note.unid()) {
    return Status::InvalidArgument("note UNID mismatch on update");
  }
  if (existing->sequence() != note.sequence()) {
    // The caller's copy is stale: a local "save conflict" in Notes terms.
    return Status::Conflict(
        StrPrintf("note %u was updated concurrently (seq %u vs %u)",
                  note.id(), existing->sequence(), note.sequence()));
  }
  note.BumpSequence(StampTime());
  note.StampItemModifications(existing.get(), note.sequence_time());
  note.set_modified_in_file(StampTime());
  RecordPreImage(note.id());
  DOMINO_RETURN_IF_ERROR(store_->Put(&note));
  return AfterChange(note);
}

Status Database::DeleteNote(NoteId id) {
  MutationGuard guard(this);
  NoteHandle existing = store_->Find(id);
  if (existing == nullptr || existing->deleted()) {
    return Status::NotFound(StrPrintf("note %u", id));
  }
  Note stub = *existing;
  stub.MakeStub(StampTime());
  stub.set_modified_in_file(StampTime());
  RecordPreImage(id);
  DOMINO_RETURN_IF_ERROR(store_->Put(&stub));
  return AfterChange(stub);
}

Result<Note> Database::ReadNote(NoteId id) const {
  ReadTxn txn(this, /*catch_up=*/false);
  NoteHandle note = ResolveAt(id, txn.epoch());
  if (note == nullptr || note->deleted()) {
    return Status::NotFound(StrPrintf("note %u", id));
  }
  return *note;
}

Result<Note> Database::ReadNoteByUnid(const Unid& unid) const {
  ReadTxn txn(this, /*catch_up=*/false);
  NoteHandle note = ResolveUnidAt(unid, txn.epoch());
  if (note == nullptr || note->deleted()) {
    return Status::NotFound("unid " + unid.ToString());
  }
  return *note;
}

Result<NoteId> Database::CreateNoteAs(const Principal& who, Note note) {
  MutationGuard guard(this);
  const Acl acl_snapshot = acl();
  if (note.note_class() == NoteClass::kDocument) {
    if (!CanCreateDocuments(acl_snapshot, who)) {
      return Status::PermissionDenied(who.name + " may not create documents");
    }
  } else if (!CanChangeDesign(acl_snapshot, who)) {
    return Status::PermissionDenied(who.name + " may not change design");
  }
  note.SetText("$UpdatedBy", who.name);
  return CreateNote(std::move(note));
}

Status Database::UpdateNoteAs(const Principal& who, Note note) {
  MutationGuard guard(this);
  NoteHandle existing = store_->Find(note.id());
  if (existing == nullptr || existing->deleted()) {
    return Status::NotFound(StrPrintf("note %u", note.id()));
  }
  const Acl acl_snapshot = acl();
  if (existing->note_class() == NoteClass::kDocument) {
    if (!CanEditDocument(acl_snapshot, who, *existing)) {
      return Status::PermissionDenied(who.name + " may not edit this note");
    }
  } else if (!CanChangeDesign(acl_snapshot, who)) {
    return Status::PermissionDenied(who.name + " may not change design");
  }
  note.SetText("$UpdatedBy", who.name);
  return UpdateNote(std::move(note));
}

Status Database::DeleteNoteAs(const Principal& who, NoteId id) {
  MutationGuard guard(this);
  NoteHandle existing = store_->Find(id);
  if (existing == nullptr || existing->deleted()) {
    return Status::NotFound(StrPrintf("note %u", id));
  }
  const Acl acl_snapshot = acl();
  if (existing->note_class() == NoteClass::kDocument) {
    if (!CanEditDocument(acl_snapshot, who, *existing)) {
      return Status::PermissionDenied(who.name + " may not delete this note");
    }
  } else if (!CanChangeDesign(acl_snapshot, who)) {
    return Status::PermissionDenied(who.name + " may not change design");
  }
  return DeleteNote(id);
}

Result<Note> Database::ReadNoteAs(const Principal& who, NoteId id) const {
  ReadTxn txn(this, /*catch_up=*/false);
  DOMINO_ASSIGN_OR_RETURN(Note note, ReadNote(id));
  if (!CanReadDocument(acl(), who, note)) {
    return Status::PermissionDenied(who.name + " may not read this note");
  }
  return note;
}

Result<NoteId> Database::CreateResponse(const Unid& parent, Note note) {
  MutationGuard guard(this);
  NoteHandle parent_note = store_->FindByUnid(parent);
  if (parent_note == nullptr || parent_note->deleted()) {
    return Status::NotFound("parent " + parent.ToString());
  }
  note.set_parent_unid(parent);
  return CreateNote(std::move(note));
}

// ---------------------------------------------------------------------------
// Views
// ---------------------------------------------------------------------------

Result<ViewIndex*> Database::CreateView(ViewDesign design) {
  MutationGuard guard(this);
  std::string key = ToLower(design.name());
  Note design_note = design.ToNote();
  NoteId existing_id = kInvalidNoteId;
  {
    MutexLock lock(&catalog_mu_);
    auto it = view_note_ids_.find(key);
    if (it != view_note_ids_.end()) existing_id = it->second;
  }
  if (existing_id != kInvalidNoteId) {
    auto existing = store_->Get(existing_id);
    if (existing.ok()) {
      design_note.set_id(existing_id);
      design_note.SetReplicationState(existing->oid(), existing->revisions(),
                                      existing->created(), false);
      design_note.BumpSequence(StampTime());
      design_note.set_modified_in_file(StampTime());
      RecordPreImage(existing_id);
      DOMINO_RETURN_IF_ERROR(store_->Put(&design_note));
      DOMINO_RETURN_IF_ERROR(AfterChange(design_note));
      return FindViewShared(key).get();
    }
  }
  design_note.StampCreated(GenerateUnid(), StampTime());
  design_note.set_modified_in_file(StampTime());
  design_note.set_id(store_->AllocateId());
  RecordPreImage(design_note.id());
  DOMINO_RETURN_IF_ERROR(store_->Put(&design_note));
  DOMINO_RETURN_IF_ERROR(AfterChange(design_note));
  return FindViewShared(key).get();
}

ViewIndex* Database::FindView(std::string_view name) {
  // ReadTxn catches up on deferred index events, so the view callers get
  // reflects every committed write.
  ReadTxn txn(this);
  return FindViewShared(name).get();
}

const ViewIndex* Database::FindView(std::string_view name) const {
  ReadTxn txn(this);
  return FindViewShared(name).get();
}

std::vector<std::string> Database::ViewNames() const {
  std::vector<std::string> names;
  for (const auto& view : SnapshotViews()) {
    names.push_back(view->design().name());
  }
  return names;
}

Status Database::TraverseViewAs(
    const Principal& who, std::string_view view_name,
    const std::function<void(const ViewRow&)>& visit) const {
  ReadTxn txn(this);  // pins a snapshot; catches up deferred index events
  // Resolve the principal's level and roles once for the whole pass;
  // re-resolving per row is pure overhead (the E8 hot path).
  const AccessContext access = ResolveAccess(acl(), who);
  if (access.level < AccessLevel::kReader) {
    return Status::PermissionDenied(who.name + " lacks Reader access");
  }
  std::shared_ptr<ViewIndex> view = FindViewShared(view_name);
  if (view == nullptr) {
    return Status::NotFound("view " + std::string(view_name));
  }
  const Epoch at = txn.epoch();
  // Collect rows, drop unreadable documents, then prune category rows
  // left without any visible descendants. Documents resolve at the pinned
  // epoch, so the row set and the note contents agree even while writers
  // commit mid-traversal.
  std::vector<ViewRow> rows;
  view->TraverseAt(at, [&](const ViewRow& row) {
    if (row.kind == ViewRow::Kind::kDocument) {
      NoteHandle note = ResolveAt(row.entry->note_id, at);
      if (note == nullptr || note->deleted() ||
          !CanReadDocument(access, who, *note)) {
        return;
      }
    }
    rows.push_back(row);
  });
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].kind == ViewRow::Kind::kCategory) {
      bool has_docs = false;
      for (size_t j = i + 1; j < rows.size(); ++j) {
        if (rows[j].kind == ViewRow::Kind::kCategory &&
            rows[j].indent <= rows[i].indent) {
          break;
        }
        if (rows[j].kind == ViewRow::Kind::kDocument) {
          has_docs = true;
          break;
        }
      }
      if (!has_docs) continue;
    }
    visit(rows[i]);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Folders
// ---------------------------------------------------------------------------

namespace {

constexpr char kFolderForm[] = "$Folder";

}  // namespace

Result<NoteId> Database::CreateFolder(const std::string& name) {
  MutationGuard guard(this);
  NoteId existing = kInvalidNoteId;
  ForEachLiveNote([&](const Note& note) {
    if (note.note_class() == NoteClass::kDesign &&
        EqualsIgnoreCase(note.GetText("Form"), kFolderForm) &&
        EqualsIgnoreCase(note.GetText("$Title"), name)) {
      existing = note.id();
    }
  });
  if (existing != kInvalidNoteId) {
    return Status::AlreadyExists("folder " + name);
  }
  Note folder(NoteClass::kDesign);
  folder.SetText("Form", kFolderForm);
  folder.SetText("$Title", name);
  folder.SetTextList("$FolderRefs", {});
  return CreateNote(std::move(folder));
}

namespace {

Result<Note> FindFolderNote(const Database& db, const std::string& name) {
  Note found;
  bool ok = false;
  db.ForEachLiveNote([&](const Note& note) {
    if (note.note_class() == NoteClass::kDesign &&
        EqualsIgnoreCase(note.GetText("Form"), kFolderForm) &&
        EqualsIgnoreCase(note.GetText("$Title"), name)) {
      found = note;
      ok = true;
    }
  });
  if (!ok) return Status::NotFound("folder " + name);
  return found;
}

}  // namespace

Status Database::AddToFolder(const std::string& name, const Unid& unid) {
  MutationGuard guard(this);
  if (FindByUnid(unid) == nullptr) {
    return Status::NotFound("document " + unid.ToString());
  }
  DOMINO_ASSIGN_OR_RETURN(Note folder, FindFolderNote(*this, name));
  const Value* refs = folder.FindValue("$FolderRefs");
  std::vector<std::string> list =
      refs != nullptr ? refs->texts() : std::vector<std::string>();
  std::string key = unid.ToString();
  for (const std::string& ref : list) {
    if (ref == key) return Status::Ok();  // already a member
  }
  list.push_back(key);
  folder.SetTextList("$FolderRefs", std::move(list));
  return UpdateNote(std::move(folder));
}

Status Database::RemoveFromFolder(const std::string& name,
                                  const Unid& unid) {
  MutationGuard guard(this);
  DOMINO_ASSIGN_OR_RETURN(Note folder, FindFolderNote(*this, name));
  const Value* refs = folder.FindValue("$FolderRefs");
  std::vector<std::string> list =
      refs != nullptr ? refs->texts() : std::vector<std::string>();
  std::string key = unid.ToString();
  auto it = std::find(list.begin(), list.end(), key);
  if (it == list.end()) {
    return Status::NotFound("document not in folder " + name);
  }
  list.erase(it);
  folder.SetTextList("$FolderRefs", std::move(list));
  return UpdateNote(std::move(folder));
}

Result<std::vector<Note>> Database::FolderContents(
    const std::string& name) const {
  ReadTxn txn(this, /*catch_up=*/false);
  DOMINO_ASSIGN_OR_RETURN(Note folder, FindFolderNote(*this, name));
  std::vector<Note> out;
  const Value* refs = folder.FindValue("$FolderRefs");
  if (refs != nullptr) {
    for (const std::string& ref : refs->texts()) {
      NoteHandle note = ResolveUnidAt(Unid::FromString(ref), txn.epoch());
      if (note != nullptr && !note->deleted()) out.push_back(*note);
    }
  }
  return out;
}

std::vector<std::string> Database::FolderNames() const {
  std::vector<std::string> names;
  ForEachLiveNote([&](const Note& note) {
    if (note.note_class() == NoteClass::kDesign &&
        EqualsIgnoreCase(note.GetText("Form"), kFolderForm)) {
      names.push_back(note.GetText("$Title"));
    }
  });
  return names;
}

// ---------------------------------------------------------------------------
// Full-text
// ---------------------------------------------------------------------------

Status Database::EnsureFullTextIndex() {
  WriteGuard lock(this);  // exclude writers so the build misses nothing
  {
    MutexLock cat(&catalog_mu_);
    if (fulltext_ != nullptr) return Status::Ok();
  }
  auto ft = std::make_shared<FullTextIndex>(registry_);
  // The paged store materializes notes per call rather than keeping them
  // resident, so the build needs its own stable copies for the pointer
  // spans BuildFrom shards across workers.
  std::vector<Note> copies;
  copies.reserve(store_->total_count());
  store_->ForEach([&](const Note& note) { copies.push_back(note); });
  std::vector<const Note*> notes;
  notes.reserve(copies.size());
  for (const Note& note : copies) notes.push_back(&note);
  indexer::ThreadPool* pool;
  {
    MutexLock cat(&catalog_mu_);
    pool = indexer_pool_;
  }
  ft->BuildFrom(notes, pool);
  MutexLock cat(&catalog_mu_);
  fulltext_ = std::move(ft);
  return Status::Ok();
}

bool Database::HasFullTextIndex() const {
  return SnapshotFulltext() != nullptr;
}

const FullTextIndex* Database::fulltext() const {
  return SnapshotFulltext().get();
}

Result<std::vector<Note>> Database::SearchAs(const Principal& who,
                                             std::string_view query) const {
  ReadTxn txn(this);  // pins a snapshot; catches up deferred index events
  std::shared_ptr<FullTextIndex> ft = SnapshotFulltext();
  if (ft == nullptr) {
    return Status::FailedPrecondition(
        "no full-text index; call EnsureFullTextIndex first");
  }
  const AccessContext access = ResolveAccess(acl(), who);
  const Epoch at = txn.epoch();
  DOMINO_ASSIGN_OR_RETURN(auto hits, ft->Search(query));
  std::vector<Note> out;
  if (at == kEpochLatest) {
    for (const FtHit& hit : hits) {
      NoteHandle note = store_->Find(hit.note_id);
      if (note != nullptr && !note->deleted() &&
          CanReadDocument(access, who, *note)) {
        out.push_back(*note);
      }
    }
    return out;
  }
  // Snapshot mode. The main index tracks the latest state, so its hits
  // are only authoritative for notes no commit after `at` rewrote
  // (kUseStore). Notes with overlay versions — rewritten, deleted or
  // purged after the pin — are re-searched from their pre-images with a
  // small side index, so the result SET matches a full search at the pin
  // (side-index scores use the side corpus statistics; ordering across
  // the merge is by score then id).
  struct Scored {
    double score;
    Note note;
  };
  std::vector<Scored> scored;
  for (const FtHit& hit : hits) {
    NoteHandle current = store_->Find(hit.note_id);
    MvccSnapshots::Resolution r = mvcc_.Lookup(hit.note_id, at);
    if (r.verdict != MvccSnapshots::Verdict::kUseStore) continue;
    if (current != nullptr && !current->deleted() &&
        CanReadDocument(access, who, *current)) {
      scored.push_back({hit.score, *current});
    }
  }
  stats::StatRegistry side_stats;  // keep per-query noise out of Db.* stats
  FullTextIndex side(&side_stats);
  bool any_side = false;
  for (NoteId id : mvcc_.OverlayIds()) {
    MvccSnapshots::Resolution r = mvcc_.Lookup(id, at);
    if (r.verdict != MvccSnapshots::Verdict::kVersion || r.note == nullptr) {
      continue;
    }
    side.IndexNote(*r.note);  // skips stubs / non-documents itself
    any_side = true;
  }
  if (any_side) {
    DOMINO_ASSIGN_OR_RETURN(auto side_hits, side.Search(query));
    for (const FtHit& hit : side_hits) {
      MvccSnapshots::Resolution r = mvcc_.Lookup(hit.note_id, at);
      if (r.verdict != MvccSnapshots::Verdict::kVersion ||
          r.note == nullptr) {
        continue;
      }
      if (!r.note->deleted() && CanReadDocument(access, who, *r.note)) {
        scored.push_back({hit.score, *r.note});
      }
    }
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a,
                                             const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.note.id() < b.note.id();
  });
  out.reserve(scored.size());
  for (Scored& s : scored) out.push_back(std::move(s.note));
  return out;
}

// ---------------------------------------------------------------------------
// Formula search / services
// ---------------------------------------------------------------------------

Result<std::vector<Note>> Database::FormulaSearch(
    std::string_view selection) const {
  ReadTxn txn(this);  // the selection may @DbLookup into views
  DOMINO_ASSIGN_OR_RETURN(auto f, formula::Formula::Compile(selection));
  std::vector<Note> out;
  formula::EvalContext ctx;
  BindFormulaServices(&ctx);
  // One compiled program, one VM register file, every note visible at
  // the pinned snapshot.
  formula::BatchEvaluator eval(f);
  ScanAt(txn.epoch(), [&](const Note& note) {
    if (note.deleted() || note.note_class() != NoteClass::kDocument) return;
    ctx.note = &note;
    auto matched = eval.Matches(ctx);
    if (matched.ok() && *matched) out.push_back(note);
  });
  return out;
}

namespace {

/// Concatenates one column across view entries into a single list value,
/// preserving the column type when uniform and falling back to text.
Value ConcatColumn(const std::vector<const ViewEntry*>& entries,
                   size_t column_1based) {
  if (column_1based == 0) return Value::TextList({});
  size_t col = column_1based - 1;
  bool all_numbers = true;
  bool all_times = true;
  for (const ViewEntry* entry : entries) {
    if (col >= entry->column_values.size()) continue;
    const Value& v = entry->column_values[col];
    all_numbers = all_numbers && v.is_number();
    all_times = all_times && v.is_datetime();
  }
  if (all_numbers) {
    std::vector<double> out;
    for (const ViewEntry* entry : entries) {
      if (col >= entry->column_values.size()) continue;
      const auto& nums = entry->column_values[col].numbers();
      out.insert(out.end(), nums.begin(), nums.end());
    }
    return Value::NumberList(std::move(out));
  }
  if (all_times) {
    std::vector<Micros> out;
    for (const ViewEntry* entry : entries) {
      if (col >= entry->column_values.size()) continue;
      const auto& times = entry->column_values[col].times();
      out.insert(out.end(), times.begin(), times.end());
    }
    return Value::DateTimeList(std::move(out));
  }
  std::vector<std::string> out;
  for (const ViewEntry* entry : entries) {
    if (col >= entry->column_values.size()) continue;
    const Value& v = entry->column_values[col];
    for (size_t i = 0; i < v.size(); ++i) {
      out.push_back(v.is_text() ? v.texts()[i] : v.ToDisplayString());
    }
  }
  return Value::TextList(std::move(out));
}

}  // namespace

void Database::BindFormulaServices(formula::EvalContext* ctx) const {
  // Title, replica id and clock are immutable after Open — no lock. The
  // lookup hook pins per call: a fresh snapshot from pool or agent
  // threads, the caller's own pin when re-entered under FormulaSearch.
  ctx->clock = clock_;
  ctx->db_title = title();
  ctx->replica_id = replica_id().ToString();
  ctx->db_lookup = [this](const std::string& view_name,
                          const std::optional<Value>& key,
                          size_t column) -> Result<Value> {
    ReadTxn txn(this);
    std::shared_ptr<ViewIndex> view = FindViewShared(view_name);
    if (view == nullptr) {
      return Status::NotFound("@DbLookup/@DbColumn: no view " + view_name);
    }
    std::vector<const ViewEntry*> entries =
        key.has_value() ? view->FindByKeyAt(*key, txn.epoch())
                        : view->EntriesAt(txn.epoch());
    if (column == 0 || column > view->design().columns().size()) {
      return Status::InvalidArgument(
          "@DbLookup/@DbColumn: bad column index");
    }
    return ConcatColumn(entries, column);
  };
}

// ---------------------------------------------------------------------------
// Unread marks
// ---------------------------------------------------------------------------

void Database::MarkRead(const Principal& who, const Unid& unid) {
  MutexLock lock(&marks_mu_);
  read_marks_[ToLower(who.name)].insert(unid);
}

bool Database::IsUnread(const Principal& who, const Unid& unid) const {
  MutexLock lock(&marks_mu_);
  auto it = read_marks_.find(ToLower(who.name));
  if (it == read_marks_.end()) return true;
  return it->second.count(unid) == 0;
}

size_t Database::UnreadCount(const Principal& who) const {
  ReadTxn txn(this, /*catch_up=*/false);
  std::set<Unid> read;
  {
    MutexLock lock(&marks_mu_);
    auto it = read_marks_.find(ToLower(who.name));
    if (it != read_marks_.end()) read = it->second;
  }
  size_t unread = 0;
  ScanAt(txn.epoch(), [&](const Note& note) {
    if (!note.deleted() && note.note_class() == NoteClass::kDocument &&
        read.count(note.unid()) == 0) {
      ++unread;
    }
  });
  return unread;
}

// ---------------------------------------------------------------------------
// Replication support
// ---------------------------------------------------------------------------

std::vector<Oid> Database::ChangesSince(Micros cutoff) const {
  ReadTxn txn(this, /*catch_up=*/false);
  std::vector<Oid> changes;
  ScanAt(txn.epoch(), [&](const Note& note) {
    if (note.modified_in_file() > cutoff) changes.push_back(note.oid());
  });
  return changes;
}

std::vector<Database::Change> Database::ChangeSummarySince(
    Micros cutoff) const {
  ReadTxn txn(this, /*catch_up=*/false);
  std::vector<Change> changes;
  ScanAt(txn.epoch(), [&](const Note& note) {
    if (note.modified_in_file() > cutoff) {
      changes.push_back(Change{note.oid(), note.modified_in_file()});
    }
  });
  std::sort(changes.begin(), changes.end(),
            [](const Change& a, const Change& b) {
              if (a.stamp != b.stamp) return a.stamp < b.stamp;
              return a.oid.unid < b.oid.unid;
            });
  return changes;
}

Result<Note> Database::GetAnyByUnid(const Unid& unid) const {
  ReadTxn txn(this, /*catch_up=*/false);
  NoteHandle note = ResolveUnidAt(unid, txn.epoch());
  if (note == nullptr) return Status::NotFound("unid " + unid.ToString());
  return *note;
}

Status Database::InstallRemoteNote(Note note) {
  MutationGuard guard(this);
  NoteHandle local = store_->FindByUnid(note.unid());
  note.set_id(local != nullptr ? local->id() : store_->AllocateId());
  note.set_modified_in_file(StampTime());
  RecordPreImage(note.id());
  DOMINO_RETURN_IF_ERROR(store_->Put(&note));
  return AfterChange(note);
}

void Database::AttachReplicationHistory(const ReplicationHistory* history) {
  MutexLock lock(&catalog_mu_);
  repl_history_ = history;
}

Result<size_t> Database::PurgeStubs() {
  MutationGuard guard(this);
  // Logical "now": the clock when present. A clockless database used to
  // compute a negative cutoff here and silently purge nothing; instead,
  // age stubs against the newest stamp the store has seen.
  Micros now = 0;
  if (clock_ != nullptr) {
    now = clock_->Now();
  } else {
    now = last_stamp_.load(std::memory_order_relaxed);
    store_->ForEach([&](const Note& note) {
      now = std::max({now, note.modified_in_file(), note.sequence_time()});
    });
  }
  const Micros age_cutoff = now - store_->info().purge_interval;
  // Deletion-resurrection guard: a stub some recorded replication peer
  // has not yet seen must survive the age cutoff — otherwise that peer's
  // live copy replicates back and the delete silently undoes. A peer has
  // seen everything stamped at or below its recorded history cutoff.
  // Databases with no attached history (never replicate) purge by age
  // alone.
  Micros seen_by_all_peers = std::numeric_limits<Micros>::max();
  const ReplicationHistory* history;
  {
    MutexLock lock(&catalog_mu_);
    history = repl_history_;
  }
  if (history != nullptr) {
    seen_by_all_peers = history->MinCutoff().value_or(seen_by_all_peers);
  }
  // Collect ids first: Erase mutates the map under ForEach otherwise.
  std::vector<NoteId> purged;
  store_->ForEach([&](const Note& note) {
    if (note.deleted() && note.sequence_time() < age_cutoff &&
        note.modified_in_file() <= seen_by_all_peers) {
      purged.push_back(note.id());
    }
  });
  std::shared_ptr<indexer::IndexerTask> task = SnapshotIndexer();
  for (NoteId id : purged) {
    // Pre-image first: readers pinned before this commit keep resolving
    // the stub (and its UNID) through the overlay until they unpin.
    RecordPreImage(id);
    DOMINO_RETURN_IF_ERROR(store_->Erase(id));
    {
      MutexLock lock(&catalog_mu_);
      for (auto& [parent, kids] : children_) kids.erase(id);
    }
    if (task != nullptr) {
      // Route the erase through the indexer queue so it stays ordered
      // behind any still-pending kChanged for the same note; removing
      // from the indexes synchronously would let such a queued update
      // resurrect the purged note there.
      task->Enqueue(indexer::NoteChange{id, indexer::ChangeKind::kErased,
                                        commit_epoch_, nullptr});
    } else {
      for (const auto& view : SnapshotViews()) {
        view->Remove(id, commit_epoch_);
      }
      if (auto ft = SnapshotFulltext()) ft->RemoveNote(id);
    }
    MutexLock lock(&notify_mu_);
    if (!observers_.empty()) {
      PendingNotify n;
      n.erased_id = id;
      pending_notify_.push_back(std::move(n));
    }
  }
  ctr_stubs_purged_->Add(purged.size());
  return purged.size();
}

// ---------------------------------------------------------------------------
// Observation / iteration
// ---------------------------------------------------------------------------

void Database::AddObserver(DatabaseObserver* observer) {
  MutexLock lock(&notify_mu_);
  observers_.push_back(observer);
}

void Database::RemoveObserver(DatabaseObserver* observer) {
  MutexLock lock(&notify_mu_);
  for (auto it = observers_.begin(); it != observers_.end(); ++it) {
    if (*it == observer) {
      observers_.erase(it);
      return;
    }
  }
}

void Database::ForEachLiveNote(
    const std::function<void(const Note&)>& fn) const {
  ReadTxn txn(this, /*catch_up=*/false);
  ScanAt(txn.epoch(), [&](const Note& note) {
    if (!note.deleted()) fn(note);
  });
}

void Database::ForEachNote(const std::function<void(const Note&)>& fn) const {
  ReadTxn txn(this, /*catch_up=*/false);
  ScanAt(txn.epoch(), fn);
}

size_t Database::note_count() const { return store_->note_count(); }

size_t Database::stub_count() const { return store_->stub_count(); }

StoreStats Database::store_stats() const { return store_->stats(); }

Status Database::Checkpoint() {
  WriteGuard lock(this);
  return store_->Checkpoint();
}

Status Database::RunCompact() {
  // Each slice holds the write lock only while it copies a handful of
  // pages; other writers interleave between slices, and readers never
  // block at all (they resolve through the store's own page locks and
  // the overlay). This is the online COMPACT of the paper (§ compaction)
  // rather than the offline copy-style one.
  for (;;) {
    WriteGuard lock(this);
    DOMINO_ASSIGN_OR_RETURN(size_t reclaimed, store_->CompactStep(8));
    if (reclaimed == 0) break;
  }
  WriteGuard lock(this);
  return store_->Checkpoint();
}

// ---------------------------------------------------------------------------
// NoteResolver (latest-state reads for index maintenance)
// ---------------------------------------------------------------------------

NoteHandle Database::FindByUnid(const Unid& unid) const {
  NoteHandle note = store_->FindByUnid(unid);
  return (note != nullptr && !note->deleted()) ? note : nullptr;
}

NoteHandle Database::FindById(NoteId id) const {
  NoteHandle note = store_->Find(id);
  return (note != nullptr && !note->deleted()) ? note : nullptr;
}

std::vector<NoteId> Database::ChildrenOf(const Unid& parent) const {
  MutexLock lock(&catalog_mu_);
  auto it = children_.find(parent);
  if (it == children_.end()) return {};
  return std::vector<NoteId>(it->second.begin(), it->second.end());
}

// ---------------------------------------------------------------------------
// Design application / post-commit bookkeeping
// ---------------------------------------------------------------------------

Status Database::ApplyDesignNote(const Note& note) {
  if (note.note_class() == NoteClass::kAcl) {
    DOMINO_ASSIGN_OR_RETURN(Acl acl, Acl::FromNote(note));
    MutexLock lock(&acl_mu_);
    acl_ = std::move(acl);
    acl_note_id_ = note.id();
    return Status::Ok();
  }
  if (note.note_class() == NoteClass::kView) {
    DOMINO_ASSIGN_OR_RETURN(ViewDesign design, ViewDesign::FromNote(note));
    std::string key = ToLower(design.name());
    indexer::ThreadPool* pool;
    {
      MutexLock lock(&catalog_mu_);
      pool = indexer_pool_;
    }
    auto index =
        std::make_shared<ViewIndex>(std::move(design), clock_, registry_);
    DOMINO_RETURN_IF_ERROR(index->Rebuild(
        [this](const std::function<void(const Note&)>& fn) {
          store_->ForEach(fn);
        },
        this, pool));
    // Swap in only after the rebuild: readers holding the old index via
    // its shared_ptr keep traversing it; new readers get the new one. A
    // design change is not snapshot-isolated (matching Domino, where a
    // view refresh is immediately visible), but it is never torn.
    MutexLock lock(&catalog_mu_);
    views_[key] = std::move(index);
    view_note_ids_[key] = note.id();
    return Status::Ok();
  }
  return Status::Ok();
}

Status Database::AfterChange(const Note& note) {
  // Response-children index.
  if (!note.parent_unid().IsNull()) {
    MutexLock lock(&catalog_mu_);
    if (note.deleted()) {
      children_[note.parent_unid()].erase(note.id());
    } else {
      children_[note.parent_unid()].insert(note.id());
    }
  }
  // Design changes take effect immediately — including ones that arrive
  // via replication (a central point of the Notes architecture).
  if (note.note_class() == NoteClass::kAcl ||
      note.note_class() == NoteClass::kView) {
    if (note.deleted()) {
      if (note.note_class() == NoteClass::kView) {
        MutexLock lock(&catalog_mu_);
        for (auto it = view_note_ids_.begin(); it != view_note_ids_.end();
             ++it) {
          if (it->second == note.id()) {
            views_.erase(it->first);
            view_note_ids_.erase(it);
            break;
          }
        }
      }
    } else {
      DOMINO_RETURN_IF_ERROR(ApplyDesignNote(note));
    }
  }
  // Document maintenance defers to the background indexer when attached:
  // the writer returns as soon as the event — carrying the commit epoch
  // and the note state it produced — is queued; the pool (or a reader
  // catching up to its pin) applies it. Design notes were handled above.
  std::shared_ptr<indexer::IndexerTask> task = SnapshotIndexer();
  if (task != nullptr && note.note_class() == NoteClass::kDocument) {
    task->Enqueue(indexer::NoteChange{note.id(),
                                      indexer::ChangeKind::kChanged,
                                      commit_epoch_,
                                      std::make_shared<Note>(note)});
  } else {
    for (const auto& view : SnapshotViews()) {
      DOMINO_RETURN_IF_ERROR(view->Update(note, this, commit_epoch_));
    }
    if (auto ft = SnapshotFulltext()) ft->IndexNote(note);
  }
  // Observers fire after the outermost mutator releases the write lock
  // (see MutationGuard) — a cluster observer locks peer databases, which
  // must never nest inside our own lock.
  {
    MutexLock lock(&notify_mu_);
    if (!observers_.empty()) {
      pending_notify_.push_back(PendingNotify{note, kInvalidNoteId});
    }
  }
  // Threshold checkpointing runs here — after the commit and the index
  // maintenance, never inside the store's commit path. With an indexer
  // attached the background drain is the (idler) checkpoint hook instead.
  if (task == nullptr) {
    DOMINO_RETURN_IF_ERROR(store_->MaybeCompact());
    DOMINO_RETURN_IF_ERROR(store_->MaybeCheckpoint());
  }
  return Status::Ok();
}

}  // namespace dominodb
