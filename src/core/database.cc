#include "core/database.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>

#include "base/string_util.h"
#include "core/replication_history.h"
#include "formula/formula.h"

namespace dominodb {

namespace {

std::atomic<uint64_t> g_open_counter{1};

/// Thread-local lock-ownership token: one entry per database this thread
/// currently holds. `depth` counts nested guard acquisitions; `exclusive`
/// is the mode of the outermost (real) acquisition. The vector is tiny —
/// a thread rarely holds more than one database (a cluster observer
/// applying to a peer holds zero: notifications fire outside the lock).
struct LockToken {
  const void* db;
  int depth;
  bool exclusive;
};

thread_local std::vector<LockToken> t_lock_tokens;

LockToken* FindToken(const void* db) {
  for (LockToken& token : t_lock_tokens) {
    if (token.db == db) return &token;
  }
  return nullptr;
}

void PopToken(const void* db) {
  for (auto it = t_lock_tokens.begin(); it != t_lock_tokens.end(); ++it) {
    if (it->db == db) {
      t_lock_tokens.erase(it);
      return;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Locking primitives
// ---------------------------------------------------------------------------

void Database::AcquireWrite() const {
  LockToken* token = FindToken(this);
  if (token != nullptr) {
    if (!token->exclusive) {
      // A shared→exclusive upgrade on the same thread would self-deadlock
      // (shared_mutex cannot upgrade in place). Read paths must not call
      // mutators; fail loudly instead of hanging.
      std::fprintf(stderr,
                   "dominodb: forbidden lock upgrade (shared -> exclusive) "
                   "on database %p\n",
                   static_cast<const void*>(this));
      std::abort();
    }
    ++token->depth;
    return;
  }
  mu_.Lock();
  t_lock_tokens.push_back({this, 1, true});
}

bool Database::TryAcquireWrite() const {
  LockToken* token = FindToken(this);
  if (token != nullptr) {
    if (!token->exclusive) return false;  // never upgrade
    ++token->depth;
    return true;
  }
  if (!mu_.TryLock()) return false;
  t_lock_tokens.push_back({this, 1, true});
  return true;
}

void Database::ReleaseWrite() const {
  LockToken* token = FindToken(this);
  if (--token->depth == 0) {
    PopToken(this);
    mu_.Unlock();
  }
}

void Database::AcquireRead(bool catch_up) const {
  LockToken* token = FindToken(this);
  if (token != nullptr) {
    ++token->depth;
    if (catch_up && token->exclusive) {
      // Re-entrant read under this thread's own mutator: the exclusive
      // hold already lets us drain, so catch up inline to preserve
      // read-your-writes for views and full-text.
      Status status = const_cast<Database*>(this)->FlushIndexesLocked();
      if (!status.ok()) {
        registry_->events().Log(stats::Severity::kWarning, "Indexer",
                                "read catch-up: " + status.message());
      }
    }
    return;
  }
  for (;;) {
    mu_.LockShared();
    const bool pending =
        catch_up && indexer_ != nullptr && indexer_->HasPending();
    if (!pending) break;
    // Readers may not apply index events under a shared hold, and
    // upgrading in place deadlocks — so drop the shared hold, drain under
    // a real exclusive hold, and retry. Once a shared hold observes an
    // empty queue it stays empty: only writers enqueue, and the shared
    // hold excludes them.
    mu_.UnlockShared();
    mu_.Lock();
    t_lock_tokens.push_back({this, 1, true});
    Status status = const_cast<Database*>(this)->FlushIndexesLocked();
    if (!status.ok()) {
      registry_->events().Log(stats::Severity::kWarning, "Indexer",
                              "read catch-up: " + status.message());
    }
    PopToken(this);
    mu_.Unlock();
  }
  t_lock_tokens.push_back({this, 1, false});
}

void Database::ReleaseRead() const {
  LockToken* token = FindToken(this);
  if (--token->depth == 0) {
    // Guards unwind LIFO, so a token reaching depth 0 here was taken
    // shared (an exclusive outer frame would still hold depth > 0).
    PopToken(this);
    mu_.UnlockShared();
  }
}

// ---------------------------------------------------------------------------
// Lock guards
// ---------------------------------------------------------------------------

/// Shared hold that first catches up on deferred indexer events — the
/// guard for every read that consults views or the full-text index.
class SCOPED_CAPABILITY Database::ReadTxn {
 public:
  explicit ReadTxn(const Database* db) ACQUIRE_SHARED(db->mu_, db_index_lock)
      : db_(db) {
    db_->AcquireRead(/*catch_up=*/true);
  }
  ~ReadTxn() RELEASE() { db_->ReleaseRead(); }
  ReadTxn(const ReadTxn&) = delete;
  ReadTxn& operator=(const ReadTxn&) = delete;

 private:
  const Database* db_;
};

/// Plain shared hold for reads that never touch views or full-text.
class SCOPED_CAPABILITY Database::ReadGuard {
 public:
  explicit ReadGuard(const Database* db) ACQUIRE_SHARED(db->mu_, db_index_lock)
      : db_(db) {
    db_->AcquireRead(/*catch_up=*/false);
  }
  ~ReadGuard() RELEASE() { db_->ReleaseRead(); }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

 private:
  const Database* db_;
};

/// Exclusive hold for internal state changes that produce no observer
/// notifications (index attach, unread marks, checkpoints, ...).
class SCOPED_CAPABILITY Database::WriteGuard {
 public:
  explicit WriteGuard(const Database* db) ACQUIRE(db->mu_, db_index_lock)
      : db_(db) {
    db_->AcquireWrite();
  }
  ~WriteGuard() RELEASE() { db_->ReleaseWrite(); }
  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;

 private:
  const Database* db_;
};

/// Scope guard for public mutators: holds the exclusive lock and, when
/// the OUTERMOST guard on this thread releases it, fires the observer
/// notifications AfterChange queued. Observers therefore never run under
/// mu_, so a cluster observer may lock a peer database without creating a
/// lock order between the two databases.
class SCOPED_CAPABILITY Database::MutationGuard {
 public:
  explicit MutationGuard(Database* db) ACQUIRE(db->mu_, db_index_lock)
      : db_(db) {
    db_->AcquireWrite();
    ++db_->mutation_depth_;
  }
  ~MutationGuard() RELEASE() {
    const bool outermost = --db_->mutation_depth_ == 0;
    db_->ReleaseWrite();
    if (outermost) db_->DrainNotifications();
  }
  MutationGuard(const MutationGuard&) = delete;
  MutationGuard& operator=(const MutationGuard&) = delete;

 private:
  Database* db_;
};

void Database::DrainNotifications() {
  // An observer's own writes re-enter here; the outer drain on this
  // thread finishes the queue, so just return.
  if (notify_drainer_.load(std::memory_order_relaxed) ==
      std::this_thread::get_id()) {
    return;
  }
  for (;;) {
    {
      WriteGuard lock(this);
      if (pending_notify_.empty()) return;
    }
    if (!notify_drain_mu_.try_lock()) {
      // Another thread is draining; wait for it to flush our events too
      // (or to exit, in which case we take over).
      std::this_thread::yield();
      continue;
    }
    std::lock_guard<std::mutex> drain_guard(notify_drain_mu_,
                                            std::adopt_lock);
    notify_drainer_.store(std::this_thread::get_id(),
                          std::memory_order_relaxed);
    for (;;) {
      std::vector<PendingNotify> batch;
      std::vector<DatabaseObserver*> observers;
      {
        WriteGuard lock(this);
        if (pending_notify_.empty()) break;
        batch.swap(pending_notify_);
        observers = observers_;
      }
      for (const PendingNotify& n : batch) {
        for (DatabaseObserver* obs : observers) {
          if (n.erased_id != kInvalidNoteId) {
            obs->OnNoteErased(n.erased_id);
          } else {
            obs->OnNoteChanged(n.note);
          }
        }
      }
    }
    notify_drainer_.store(std::thread::id(), std::memory_order_relaxed);
  }
}

Database::~Database() {
  // Stop the background drain before any member is torn down: Close
  // waits for in-flight pool callbacks, which may still lock mu_ and
  // touch views/full-text until it returns. Close must run outside the
  // lock for the same reason.
  indexer::IndexerTask* task = nullptr;
  {
    WriteGuard lock(this);
    task = indexer_.get();
  }
  if (task != nullptr) task->Close();
}

void Database::AttachIndexer(indexer::ThreadPool* pool) {
  {
    ReadGuard lock(this);
    if (indexer_pool_ == pool) return;
  }
  // Detach the current task first: flush its events and wait out its
  // in-flight callbacks so a stale drain never races the replacement.
  std::unique_ptr<indexer::IndexerTask> old;
  {
    WriteGuard lock(this);
    if (indexer_ != nullptr) {
      FlushIndexesLocked().ok();
      old = std::move(indexer_);
    }
    indexer_pool_ = nullptr;
  }
  if (old != nullptr) old->Close();
  old.reset();
  WriteGuard lock(this);
  indexer_pool_ = pool;
  if (pool != nullptr) {
    indexer_ = std::make_unique<indexer::IndexerTask>(
        pool,
        [this](indexer::IndexerTask* task) { BackgroundIndexDrain(task); },
        registry_);
  }
}

Status Database::FlushIndexes() {
  WriteGuard lock(this);
  return FlushIndexesLocked();
}

Status Database::FlushIndexesLocked() {
  if (indexer_ == nullptr) return Status::Ok();
  Status status = Status::Ok();
  indexer_->DrainInline([this, &status](const indexer::NoteChange& change) {
    Status s = ApplyIndexEvent(change);
    if (status.ok() && !s.ok()) status = s;
  });
  return status;
}

bool Database::HasPendingIndexWork() const {
  ReadGuard lock(this);
  return indexer_ != nullptr && indexer_->HasPending();
}

Status Database::ApplyIndexEvent(const indexer::NoteChange& change) {
  NoteHandle note = change.kind == indexer::ChangeKind::kErased
                        ? nullptr
                        : store_->Find(change.id);
  if (note == nullptr) {
    // Erased, or purged before the drain caught up.
    for (auto& [name, view] : views_) view->Remove(change.id);
    if (fulltext_ != nullptr) fulltext_->RemoveNote(change.id);
    return Status::Ok();
  }
  for (auto& [name, view] : views_) {
    DOMINO_RETURN_IF_ERROR(view->Update(*note, this));
  }
  if (fulltext_ != nullptr) fulltext_->IndexNote(*note);
  return Status::Ok();
}

void Database::BackgroundIndexDrain(indexer::IndexerTask* task) {
  if (!TryAcquireWrite()) {
    // The database is busy — possibly a rebuild coordinator waiting on
    // the very pool this callback runs on. Re-arm instead of blocking a
    // worker; the next enqueue or read-path catch-up drains the queue.
    task->ClearScheduled();
    return;
  }
  if (task == indexer_.get()) {  // else: detached while queued
    Status status = FlushIndexesLocked();
    if (!status.ok()) {
      registry_->events().Log(stats::Severity::kWarning, "Indexer",
                              "background drain: " + status.message());
    }
    // Idle-time threshold maintenance: the pool worker pays for the
    // compaction slice and the snapshot, not a foreground writer.
    Status comp = store_->MaybeCompact();
    if (!comp.ok()) {
      registry_->events().Log(stats::Severity::kWarning, "Store",
                              "background compact: " + comp.message());
    }
    Status ckpt = store_->MaybeCheckpoint();
    if (!ckpt.ok()) {
      registry_->events().Log(stats::Severity::kWarning, "Store",
                              "background checkpoint: " + ckpt.message());
    }
  }
  ReleaseWrite();
}

Result<std::unique_ptr<Database>> Database::Open(
    const std::string& dir, const DatabaseOptions& options,
    const Clock* clock) {
  uint64_t seed = options.unid_seed != 0
                      ? options.unid_seed
                      : Fnv1a64(dir) ^
                            Mix64(g_open_counter.fetch_add(1));
  stats::StatRegistry* registry = options.stats != nullptr
                                      ? options.stats
                                      : &stats::StatRegistry::Global();
  std::unique_ptr<Database> db(new Database(clock, seed, registry));
  // Still single-threaded; the guard exists for the static analysis and
  // costs one uncontended lock.
  WriteGuard setup(db.get());
  DatabaseInfo default_info;
  default_info.title = options.title;
  default_info.purge_interval = options.purge_interval;
  if (options.replica_id.IsNull()) {
    default_info.replica_id = Unid{db->rng_.Next(), db->rng_.Next()};
  } else {
    default_info.replica_id = options.replica_id;
  }
  StoreOptions store_options = options.store;
  if (store_options.stats == nullptr) store_options.stats = registry;
  DOMINO_ASSIGN_OR_RETURN(db->store_,
                          NoteStore::Open(dir, store_options, default_info));
  db->LoadDesignState();
  return db;
}

void Database::LoadDesignState() {
  // Children index + design notes (ACL, views) from the store.
  std::vector<const Note*> view_notes;
  store_->ForEach([&](const Note& note) {
    if (!note.deleted() && !note.parent_unid().IsNull()) {
      children_[note.parent_unid()].insert(note.id());
    }
    if (note.deleted()) return;
    if (note.note_class() == NoteClass::kAcl) {
      auto acl = Acl::FromNote(note);
      if (acl.ok()) {
        acl_ = std::move(*acl);
        acl_note_id_ = note.id();
      }
    }
  });
  // Views need a second pass so the children index is complete before
  // the rebuild walks response hierarchies.
  store_->ForEach([&](const Note& note) {
    if (!note.deleted() && note.note_class() == NoteClass::kView) {
      ApplyDesignNote(note).ok();
    }
  });
}

Unid Database::GenerateUnid() {
  for (;;) {
    Unid unid{rng_.Next(), rng_.Next()};
    if (!unid.IsNull() && !store_->ContainsUnid(unid)) return unid;
  }
}

Micros Database::StampTime() {
  // Sequence times double as version identifiers during replication, so
  // two replicas must never stamp the same microsecond. Real deployments
  // rely on clock skew; under a shared SimClock we reproduce the skew by
  // giving each database instance a distinct sub-millisecond residue.
  Micros t = clock_ != nullptr ? clock_->Now() : 0;
  t = t - (t % 1000) + stamp_salt_;
  const Micros last = last_stamp_.load(std::memory_order_relaxed);
  if (t <= last) {
    t = last + 1000;  // next millisecond tick, same residue
  }
  last_stamp_.store(t, std::memory_order_release);
  return t;
}

const Acl& Database::acl() const {
  ReadGuard lock(this);
  return acl_;
}

Status Database::SetAcl(const Acl& acl) {
  MutationGuard guard(this);
  Note note = acl.ToNote();
  if (acl_note_id_ != kInvalidNoteId) {
    auto existing = store_->Get(acl_note_id_);
    if (existing.ok()) {
      note.set_id(acl_note_id_);
      note.SetReplicationState(existing->oid(), existing->revisions(),
                               existing->created(), false);
      note.BumpSequence(StampTime());
      note.set_modified_in_file(StampTime());
      DOMINO_RETURN_IF_ERROR(store_->Put(&note));
      return AfterChange(note);
    }
  }
  note.StampCreated(GenerateUnid(), StampTime());
  note.set_modified_in_file(StampTime());
  DOMINO_RETURN_IF_ERROR(store_->Put(&note));
  acl_note_id_ = note.id();
  return AfterChange(note);
}

Status Database::SetAclAs(const Principal& who, const Acl& acl) {
  MutationGuard guard(this);
  if (!CanChangeAcl(acl_, who)) {
    return Status::PermissionDenied(who.name + " lacks Manager access");
  }
  return SetAcl(acl);
}

Result<NoteId> Database::CreateNote(Note note) {
  MutationGuard guard(this);
  note.set_id(kInvalidNoteId);
  note.StampCreated(GenerateUnid(), StampTime());
  note.StampItemModifications(nullptr, note.sequence_time());
  note.set_modified_in_file(StampTime());
  DOMINO_RETURN_IF_ERROR(store_->Put(&note));
  DOMINO_RETURN_IF_ERROR(AfterChange(note));
  return note.id();
}

Status Database::UpdateNote(Note note) {
  MutationGuard guard(this);
  NoteHandle existing = store_->Find(note.id());
  if (existing == nullptr || existing->deleted()) {
    return Status::NotFound(StrPrintf("note %u", note.id()));
  }
  if (existing->unid() != note.unid()) {
    return Status::InvalidArgument("note UNID mismatch on update");
  }
  if (existing->sequence() != note.sequence()) {
    // The caller's copy is stale: a local "save conflict" in Notes terms.
    return Status::Conflict(
        StrPrintf("note %u was updated concurrently (seq %u vs %u)",
                  note.id(), existing->sequence(), note.sequence()));
  }
  note.BumpSequence(StampTime());
  note.StampItemModifications(existing.get(), note.sequence_time());
  note.set_modified_in_file(StampTime());
  DOMINO_RETURN_IF_ERROR(store_->Put(&note));
  return AfterChange(note);
}

Status Database::DeleteNote(NoteId id) {
  MutationGuard guard(this);
  NoteHandle existing = store_->Find(id);
  if (existing == nullptr || existing->deleted()) {
    return Status::NotFound(StrPrintf("note %u", id));
  }
  Note stub = *existing;
  stub.MakeStub(StampTime());
  stub.set_modified_in_file(StampTime());
  DOMINO_RETURN_IF_ERROR(store_->Put(&stub));
  return AfterChange(stub);
}

Result<Note> Database::ReadNote(NoteId id) const {
  ReadGuard lock(this);
  NoteHandle note = store_->Find(id);
  if (note == nullptr || note->deleted()) {
    return Status::NotFound(StrPrintf("note %u", id));
  }
  return *note;
}

Result<Note> Database::ReadNoteByUnid(const Unid& unid) const {
  ReadGuard lock(this);
  NoteHandle note = store_->FindByUnid(unid);
  if (note == nullptr || note->deleted()) {
    return Status::NotFound("unid " + unid.ToString());
  }
  return *note;
}

Result<NoteId> Database::CreateNoteAs(const Principal& who, Note note) {
  MutationGuard guard(this);
  if (note.note_class() == NoteClass::kDocument) {
    if (!CanCreateDocuments(acl_, who)) {
      return Status::PermissionDenied(who.name + " may not create documents");
    }
  } else if (!CanChangeDesign(acl_, who)) {
    return Status::PermissionDenied(who.name + " may not change design");
  }
  note.SetText("$UpdatedBy", who.name);
  return CreateNote(std::move(note));
}

Status Database::UpdateNoteAs(const Principal& who, Note note) {
  MutationGuard guard(this);
  NoteHandle existing = store_->Find(note.id());
  if (existing == nullptr || existing->deleted()) {
    return Status::NotFound(StrPrintf("note %u", note.id()));
  }
  if (existing->note_class() == NoteClass::kDocument) {
    if (!CanEditDocument(acl_, who, *existing)) {
      return Status::PermissionDenied(who.name + " may not edit this note");
    }
  } else if (!CanChangeDesign(acl_, who)) {
    return Status::PermissionDenied(who.name + " may not change design");
  }
  note.SetText("$UpdatedBy", who.name);
  return UpdateNote(std::move(note));
}

Status Database::DeleteNoteAs(const Principal& who, NoteId id) {
  MutationGuard guard(this);
  NoteHandle existing = store_->Find(id);
  if (existing == nullptr || existing->deleted()) {
    return Status::NotFound(StrPrintf("note %u", id));
  }
  if (existing->note_class() == NoteClass::kDocument) {
    if (!CanEditDocument(acl_, who, *existing)) {
      return Status::PermissionDenied(who.name + " may not delete this note");
    }
  } else if (!CanChangeDesign(acl_, who)) {
    return Status::PermissionDenied(who.name + " may not change design");
  }
  return DeleteNote(id);
}

Result<Note> Database::ReadNoteAs(const Principal& who, NoteId id) const {
  ReadGuard lock(this);
  DOMINO_ASSIGN_OR_RETURN(Note note, ReadNote(id));
  if (!CanReadDocument(acl_, who, note)) {
    return Status::PermissionDenied(who.name + " may not read this note");
  }
  return note;
}

Result<NoteId> Database::CreateResponse(const Unid& parent, Note note) {
  MutationGuard guard(this);
  NoteHandle parent_note = store_->FindByUnid(parent);
  if (parent_note == nullptr || parent_note->deleted()) {
    return Status::NotFound("parent " + parent.ToString());
  }
  note.set_parent_unid(parent);
  return CreateNote(std::move(note));
}

Result<ViewIndex*> Database::CreateView(ViewDesign design) {
  MutationGuard guard(this);
  std::string key = ToLower(design.name());
  Note design_note = design.ToNote();
  auto it = view_note_ids_.find(key);
  if (it != view_note_ids_.end()) {
    auto existing = store_->Get(it->second);
    if (existing.ok()) {
      design_note.set_id(it->second);
      design_note.SetReplicationState(existing->oid(), existing->revisions(),
                                      existing->created(), false);
      design_note.BumpSequence(StampTime());
      design_note.set_modified_in_file(StampTime());
  DOMINO_RETURN_IF_ERROR(store_->Put(&design_note));
      DOMINO_RETURN_IF_ERROR(AfterChange(design_note));
      return views_[key].get();
    }
  }
  design_note.StampCreated(GenerateUnid(), StampTime());
  design_note.set_modified_in_file(StampTime());
  DOMINO_RETURN_IF_ERROR(store_->Put(&design_note));
  DOMINO_RETURN_IF_ERROR(AfterChange(design_note));
  return views_[key].get();
}

ViewIndex* Database::FindViewLocked(std::string_view name) const {
  auto it = views_.find(ToLower(name));
  return it == views_.end() ? nullptr : it->second.get();
}

ViewIndex* Database::FindView(std::string_view name) {
  // ReadTxn catches up on deferred index events, so the view callers get
  // reflects every committed write.
  ReadTxn txn(this);
  return FindViewLocked(name);
}

const ViewIndex* Database::FindView(std::string_view name) const {
  ReadTxn txn(this);
  return FindViewLocked(name);
}

std::vector<std::string> Database::ViewNames() const {
  ReadGuard lock(this);
  std::vector<std::string> names;
  for (const auto& [key, view] : views_) {
    names.push_back(view->design().name());
  }
  return names;
}

Status Database::TraverseViewAs(
    const Principal& who, std::string_view view_name,
    const std::function<void(const ViewRow&)>& visit) const {
  ReadTxn txn(this);  // catches up on deferred index events
  // Resolve the principal's level and roles once for the whole pass;
  // re-resolving per row is pure overhead (the E8 hot path).
  const AccessContext access = ResolveAccess(acl_, who);
  if (access.level < AccessLevel::kReader) {
    return Status::PermissionDenied(who.name + " lacks Reader access");
  }
  const ViewIndex* view = FindViewLocked(view_name);
  if (view == nullptr) {
    return Status::NotFound("view " + std::string(view_name));
  }
  // Collect rows, drop unreadable documents, then prune category rows
  // left without any visible descendants.
  std::vector<ViewRow> rows;
  view->Traverse([&](const ViewRow& row) {
    if (row.kind == ViewRow::Kind::kDocument) {
      NoteHandle note = FindById(row.entry->note_id);
      if (note == nullptr || !CanReadDocument(access, who, *note)) return;
    }
    rows.push_back(row);
  });
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].kind == ViewRow::Kind::kCategory) {
      bool has_docs = false;
      for (size_t j = i + 1; j < rows.size(); ++j) {
        if (rows[j].kind == ViewRow::Kind::kCategory &&
            rows[j].indent <= rows[i].indent) {
          break;
        }
        if (rows[j].kind == ViewRow::Kind::kDocument) {
          has_docs = true;
          break;
        }
      }
      if (!has_docs) continue;
    }
    visit(rows[i]);
  }
  return Status::Ok();
}

namespace {

constexpr char kFolderForm[] = "$Folder";

}  // namespace

Result<NoteId> Database::CreateFolder(const std::string& name) {
  MutationGuard guard(this);
  NoteId existing = kInvalidNoteId;
  ForEachLiveNote([&](const Note& note) {
    if (note.note_class() == NoteClass::kDesign &&
        EqualsIgnoreCase(note.GetText("Form"), kFolderForm) &&
        EqualsIgnoreCase(note.GetText("$Title"), name)) {
      existing = note.id();
    }
  });
  if (existing != kInvalidNoteId) {
    return Status::AlreadyExists("folder " + name);
  }
  Note folder(NoteClass::kDesign);
  folder.SetText("Form", kFolderForm);
  folder.SetText("$Title", name);
  folder.SetTextList("$FolderRefs", {});
  return CreateNote(std::move(folder));
}

namespace {

Result<Note> FindFolderNote(const Database& db, const std::string& name) {
  Note found;
  bool ok = false;
  db.ForEachLiveNote([&](const Note& note) {
    if (note.note_class() == NoteClass::kDesign &&
        EqualsIgnoreCase(note.GetText("Form"), kFolderForm) &&
        EqualsIgnoreCase(note.GetText("$Title"), name)) {
      found = note;
      ok = true;
    }
  });
  if (!ok) return Status::NotFound("folder " + name);
  return found;
}

}  // namespace

Status Database::AddToFolder(const std::string& name, const Unid& unid) {
  MutationGuard guard(this);
  if (FindByUnid(unid) == nullptr) {
    return Status::NotFound("document " + unid.ToString());
  }
  DOMINO_ASSIGN_OR_RETURN(Note folder, FindFolderNote(*this, name));
  const Value* refs = folder.FindValue("$FolderRefs");
  std::vector<std::string> list =
      refs != nullptr ? refs->texts() : std::vector<std::string>();
  std::string key = unid.ToString();
  for (const std::string& ref : list) {
    if (ref == key) return Status::Ok();  // already a member
  }
  list.push_back(key);
  folder.SetTextList("$FolderRefs", std::move(list));
  return UpdateNote(std::move(folder));
}

Status Database::RemoveFromFolder(const std::string& name,
                                  const Unid& unid) {
  MutationGuard guard(this);
  DOMINO_ASSIGN_OR_RETURN(Note folder, FindFolderNote(*this, name));
  const Value* refs = folder.FindValue("$FolderRefs");
  std::vector<std::string> list =
      refs != nullptr ? refs->texts() : std::vector<std::string>();
  std::string key = unid.ToString();
  auto it = std::find(list.begin(), list.end(), key);
  if (it == list.end()) {
    return Status::NotFound("document not in folder " + name);
  }
  list.erase(it);
  folder.SetTextList("$FolderRefs", std::move(list));
  return UpdateNote(std::move(folder));
}

Result<std::vector<Note>> Database::FolderContents(
    const std::string& name) const {
  ReadGuard lock(this);
  DOMINO_ASSIGN_OR_RETURN(Note folder, FindFolderNote(*this, name));
  std::vector<Note> out;
  const Value* refs = folder.FindValue("$FolderRefs");
  if (refs != nullptr) {
    for (const std::string& ref : refs->texts()) {
      NoteHandle note = FindByUnid(Unid::FromString(ref));
      if (note != nullptr) out.push_back(*note);
    }
  }
  return out;
}

std::vector<std::string> Database::FolderNames() const {
  ReadGuard lock(this);
  std::vector<std::string> names;
  ForEachLiveNote([&](const Note& note) {
    if (note.note_class() == NoteClass::kDesign &&
        EqualsIgnoreCase(note.GetText("Form"), kFolderForm)) {
      names.push_back(note.GetText("$Title"));
    }
  });
  return names;
}

Status Database::EnsureFullTextIndex() {
  WriteGuard lock(this);
  if (fulltext_ != nullptr) return Status::Ok();
  fulltext_ = std::make_unique<FullTextIndex>(registry_);
  // The paged store materializes notes per call rather than keeping them
  // resident, so the build needs its own stable copies for the pointer
  // spans BuildFrom shards across workers.
  std::vector<Note> copies;
  copies.reserve(store_->total_count());
  store_->ForEach([&](const Note& note) { copies.push_back(note); });
  std::vector<const Note*> notes;
  notes.reserve(copies.size());
  for (const Note& note : copies) notes.push_back(&note);
  fulltext_->BuildFrom(notes, indexer_pool_);
  return Status::Ok();
}

bool Database::HasFullTextIndex() const {
  ReadGuard lock(this);
  return fulltext_ != nullptr;
}

const FullTextIndex* Database::fulltext() const {
  ReadGuard lock(this);
  return fulltext_.get();
}

Result<std::vector<Note>> Database::SearchAs(const Principal& who,
                                             std::string_view query) const {
  ReadTxn txn(this);  // catches up, so results reflect every write
  if (fulltext_ == nullptr) {
    return Status::FailedPrecondition(
        "no full-text index; call EnsureFullTextIndex first");
  }
  const AccessContext access = ResolveAccess(acl_, who);
  DOMINO_ASSIGN_OR_RETURN(auto hits, fulltext_->Search(query));
  std::vector<Note> out;
  for (const FtHit& hit : hits) {
    NoteHandle note = store_->Find(hit.note_id);
    if (note != nullptr && !note->deleted() &&
        CanReadDocument(access, who, *note)) {
      out.push_back(*note);
    }
  }
  return out;
}

Result<std::vector<Note>> Database::FormulaSearch(
    std::string_view selection) const {
  ReadTxn txn(this);  // the selection may @DbLookup into views
  DOMINO_ASSIGN_OR_RETURN(auto f, formula::Formula::Compile(selection));
  std::vector<Note> out;
  formula::EvalContext ctx;
  BindFormulaServices(&ctx);
  // One compiled program, one VM register file, every note in the store.
  formula::BatchEvaluator eval(f);
  store_->ForEach([&](const Note& note) {
    if (note.deleted() || note.note_class() != NoteClass::kDocument) return;
    ctx.note = &note;
    auto matched = eval.Matches(ctx);
    if (matched.ok() && *matched) out.push_back(note);
  });
  return out;
}

namespace {

/// Concatenates one column across view entries into a single list value,
/// preserving the column type when uniform and falling back to text.
Value ConcatColumn(const std::vector<const ViewEntry*>& entries,
                   size_t column_1based) {
  if (column_1based == 0) return Value::TextList({});
  size_t col = column_1based - 1;
  bool all_numbers = true;
  bool all_times = true;
  for (const ViewEntry* entry : entries) {
    if (col >= entry->column_values.size()) continue;
    const Value& v = entry->column_values[col];
    all_numbers = all_numbers && v.is_number();
    all_times = all_times && v.is_datetime();
  }
  if (all_numbers) {
    std::vector<double> out;
    for (const ViewEntry* entry : entries) {
      if (col >= entry->column_values.size()) continue;
      const auto& nums = entry->column_values[col].numbers();
      out.insert(out.end(), nums.begin(), nums.end());
    }
    return Value::NumberList(std::move(out));
  }
  if (all_times) {
    std::vector<Micros> out;
    for (const ViewEntry* entry : entries) {
      if (col >= entry->column_values.size()) continue;
      const auto& times = entry->column_values[col].times();
      out.insert(out.end(), times.begin(), times.end());
    }
    return Value::DateTimeList(std::move(out));
  }
  std::vector<std::string> out;
  for (const ViewEntry* entry : entries) {
    if (col >= entry->column_values.size()) continue;
    const Value& v = entry->column_values[col];
    for (size_t i = 0; i < v.size(); ++i) {
      out.push_back(v.is_text() ? v.texts()[i] : v.ToDisplayString());
    }
  }
  return Value::TextList(std::move(out));
}

}  // namespace

void Database::BindFormulaServices(formula::EvalContext* ctx) const {
  // Title, replica id and clock are immutable after Open — no lock. The
  // lookup hook locks per call: a fresh shared acquisition from pool or
  // agent threads, a re-entrant one under FormulaSearch's own ReadTxn.
  ctx->clock = clock_;
  ctx->db_title = title();
  ctx->replica_id = replica_id().ToString();
  ctx->db_lookup = [this](const std::string& view_name,
                          const std::optional<Value>& key,
                          size_t column) -> Result<Value> {
    ReadTxn txn(this);
    const ViewIndex* view = FindViewLocked(view_name);
    if (view == nullptr) {
      return Status::NotFound("@DbLookup/@DbColumn: no view " + view_name);
    }
    std::vector<const ViewEntry*> entries =
        key.has_value() ? view->FindByKey(*key) : view->Entries();
    if (column == 0 || column > view->design().columns().size()) {
      return Status::InvalidArgument(
          "@DbLookup/@DbColumn: bad column index");
    }
    return ConcatColumn(entries, column);
  };
}

void Database::MarkRead(const Principal& who, const Unid& unid) {
  WriteGuard lock(this);
  read_marks_[ToLower(who.name)].insert(unid);
}

bool Database::IsUnreadLocked(const Principal& who, const Unid& unid) const {
  auto it = read_marks_.find(ToLower(who.name));
  if (it == read_marks_.end()) return true;
  return it->second.count(unid) == 0;
}

bool Database::IsUnread(const Principal& who, const Unid& unid) const {
  ReadGuard lock(this);
  return IsUnreadLocked(who, unid);
}

size_t Database::UnreadCount(const Principal& who) const {
  ReadGuard lock(this);
  size_t unread = 0;
  store_->ForEach([&](const Note& note) {
    if (!note.deleted() && note.note_class() == NoteClass::kDocument &&
        IsUnreadLocked(who, note.unid())) {
      ++unread;
    }
  });
  return unread;
}

std::vector<Oid> Database::ChangesSince(Micros cutoff) const {
  ReadGuard lock(this);
  std::vector<Oid> changes;
  store_->ForEach([&](const Note& note) {
    if (note.modified_in_file() > cutoff) changes.push_back(note.oid());
  });
  return changes;
}

std::vector<Database::Change> Database::ChangeSummarySince(
    Micros cutoff) const {
  ReadGuard lock(this);
  std::vector<Change> changes;
  store_->ForEach([&](const Note& note) {
    if (note.modified_in_file() > cutoff) {
      changes.push_back(Change{note.oid(), note.modified_in_file()});
    }
  });
  std::sort(changes.begin(), changes.end(),
            [](const Change& a, const Change& b) {
              if (a.stamp != b.stamp) return a.stamp < b.stamp;
              return a.oid.unid < b.oid.unid;
            });
  return changes;
}

Result<Note> Database::GetAnyByUnid(const Unid& unid) const {
  ReadGuard lock(this);
  NoteHandle note = store_->FindByUnid(unid);
  if (note == nullptr) return Status::NotFound("unid " + unid.ToString());
  return *note;
}

Status Database::InstallRemoteNote(Note note) {
  MutationGuard guard(this);
  NoteHandle local = store_->FindByUnid(note.unid());
  note.set_id(local != nullptr ? local->id() : kInvalidNoteId);
  note.set_modified_in_file(StampTime());
  DOMINO_RETURN_IF_ERROR(store_->Put(&note));
  return AfterChange(note);
}

void Database::AttachReplicationHistory(const ReplicationHistory* history) {
  WriteGuard lock(this);
  repl_history_ = history;
}

Result<size_t> Database::PurgeStubs() {
  MutationGuard guard(this);
  // Logical "now": the clock when present. A clockless database used to
  // compute a negative cutoff here and silently purge nothing; instead,
  // age stubs against the newest stamp the store has seen.
  Micros now = 0;
  if (clock_ != nullptr) {
    now = clock_->Now();
  } else {
    now = last_stamp_.load(std::memory_order_relaxed);
    store_->ForEach([&](const Note& note) {
      now = std::max({now, note.modified_in_file(), note.sequence_time()});
    });
  }
  const Micros age_cutoff = now - store_->info().purge_interval;
  // Deletion-resurrection guard: a stub some recorded replication peer
  // has not yet seen must survive the age cutoff — otherwise that peer's
  // live copy replicates back and the delete silently undoes. A peer has
  // seen everything stamped at or below its recorded history cutoff.
  // Databases with no attached history (never replicate) purge by age
  // alone.
  Micros seen_by_all_peers = std::numeric_limits<Micros>::max();
  if (repl_history_ != nullptr) {
    seen_by_all_peers =
        repl_history_->MinCutoff().value_or(seen_by_all_peers);
  }
  // Collect ids first: Erase mutates the map under ForEach otherwise.
  std::vector<NoteId> purged;
  store_->ForEach([&](const Note& note) {
    if (note.deleted() && note.sequence_time() < age_cutoff &&
        note.modified_in_file() <= seen_by_all_peers) {
      purged.push_back(note.id());
    }
  });
  for (NoteId id : purged) {
    DOMINO_RETURN_IF_ERROR(store_->Erase(id));
    for (auto& [parent, kids] : children_) kids.erase(id);
    if (indexer_ != nullptr) {
      // Route the erase through the indexer queue so it stays ordered
      // behind any still-pending kChanged for the same note; removing
      // from the indexes synchronously would let such a queued update
      // resurrect the purged note there.
      indexer_->Enqueue(
          indexer::NoteChange{id, indexer::ChangeKind::kErased});
    } else {
      for (auto& [name, view] : views_) view->Remove(id);
      if (fulltext_ != nullptr) fulltext_->RemoveNote(id);
    }
    if (!observers_.empty()) {
      PendingNotify n;
      n.erased_id = id;
      pending_notify_.push_back(std::move(n));
    }
  }
  ctr_stubs_purged_->Add(purged.size());
  return purged.size();
}

void Database::AddObserver(DatabaseObserver* observer) {
  WriteGuard lock(this);
  observers_.push_back(observer);
}

void Database::RemoveObserver(DatabaseObserver* observer) {
  WriteGuard lock(this);
  for (auto it = observers_.begin(); it != observers_.end(); ++it) {
    if (*it == observer) {
      observers_.erase(it);
      return;
    }
  }
}

void Database::ForEachLiveNote(
    const std::function<void(const Note&)>& fn) const {
  ReadGuard lock(this);
  store_->ForEach([&](const Note& note) {
    if (!note.deleted()) fn(note);
  });
}

void Database::ForEachNote(const std::function<void(const Note&)>& fn) const {
  ReadGuard lock(this);
  store_->ForEach(fn);
}

size_t Database::note_count() const {
  ReadGuard lock(this);
  return store_->note_count();
}

size_t Database::stub_count() const {
  ReadGuard lock(this);
  return store_->stub_count();
}

StoreStats Database::store_stats() const {
  ReadGuard lock(this);
  return store_->stats();
}

Status Database::Checkpoint() {
  WriteGuard lock(this);
  return store_->Checkpoint();
}

Status Database::RunCompact() {
  // Each slice holds the exclusive lock only while it copies a handful of
  // pages; readers interleave between slices, which is what makes this
  // the online COMPACT of the paper (§ compaction) rather than the
  // offline copy-style one.
  for (;;) {
    WriteGuard lock(this);
    DOMINO_ASSIGN_OR_RETURN(size_t reclaimed, store_->CompactStep(8));
    if (reclaimed == 0) break;
  }
  WriteGuard lock(this);
  return store_->Checkpoint();
}

// The NoteResolver overrides stay lock-free: parallel rebuild workers
// call them while the rebuild coordinator holds the exclusive lock, and
// locked entry points call them re-entrantly. Safe because every mutation
// holds the exclusive lock for its whole duration (see the class
// comment), so the store and children index are frozen whenever a caller
// can legitimately be here. Opted out of the static analysis for exactly
// that reason.

NoteHandle Database::FindByUnid(const Unid& unid) const
    NO_THREAD_SAFETY_ANALYSIS {
  NoteHandle note = store_->FindByUnid(unid);
  return (note != nullptr && !note->deleted()) ? note : nullptr;
}

NoteHandle Database::FindById(NoteId id) const NO_THREAD_SAFETY_ANALYSIS {
  NoteHandle note = store_->Find(id);
  return (note != nullptr && !note->deleted()) ? note : nullptr;
}

std::vector<NoteId> Database::ChildrenOf(const Unid& parent) const
    NO_THREAD_SAFETY_ANALYSIS {
  auto it = children_.find(parent);
  if (it == children_.end()) return {};
  return std::vector<NoteId>(it->second.begin(), it->second.end());
}

Status Database::ApplyDesignNote(const Note& note) {
  if (note.note_class() == NoteClass::kAcl) {
    DOMINO_ASSIGN_OR_RETURN(Acl acl, Acl::FromNote(note));
    acl_ = std::move(acl);
    acl_note_id_ = note.id();
    return Status::Ok();
  }
  if (note.note_class() == NoteClass::kView) {
    DOMINO_ASSIGN_OR_RETURN(ViewDesign design, ViewDesign::FromNote(note));
    std::string key = ToLower(design.name());
    auto index =
        std::make_unique<ViewIndex>(std::move(design), clock_, registry_);
    DOMINO_RETURN_IF_ERROR(index->Rebuild(
        [this](const std::function<void(const Note&)>& fn) {
          store_->ForEach(fn);
        },
        this, indexer_pool_));
    views_[key] = std::move(index);
    view_note_ids_[key] = note.id();
    return Status::Ok();
  }
  return Status::Ok();
}

Status Database::AfterChange(const Note& note) {
  // Response-children index.
  if (!note.parent_unid().IsNull()) {
    if (note.deleted()) {
      children_[note.parent_unid()].erase(note.id());
    } else {
      children_[note.parent_unid()].insert(note.id());
    }
  }
  // Design changes take effect immediately — including ones that arrive
  // via replication (a central point of the Notes architecture).
  if (note.note_class() == NoteClass::kAcl ||
      note.note_class() == NoteClass::kView) {
    if (note.deleted()) {
      if (note.note_class() == NoteClass::kView) {
        for (auto it = view_note_ids_.begin(); it != view_note_ids_.end();
             ++it) {
          if (it->second == note.id()) {
            views_.erase(it->first);
            view_note_ids_.erase(it);
            break;
          }
        }
      }
    } else {
      DOMINO_RETURN_IF_ERROR(ApplyDesignNote(note));
    }
  }
  // Document maintenance defers to the background indexer when attached:
  // the writer returns as soon as the event is queued, and the pool (or a
  // read-path catch-up) applies it. Design notes were handled above and
  // observers stay synchronous — the replicator depends on ordering.
  if (indexer_ != nullptr && note.note_class() == NoteClass::kDocument) {
    indexer_->Enqueue(
        indexer::NoteChange{note.id(), indexer::ChangeKind::kChanged});
  } else {
    for (auto& [name, view] : views_) {
      DOMINO_RETURN_IF_ERROR(view->Update(note, this));
    }
    if (fulltext_ != nullptr) fulltext_->IndexNote(note);
  }
  // Observers fire after the outermost mutator releases mu_ (see
  // MutationGuard) — a cluster observer locks peer databases, which must
  // never nest inside our own lock.
  if (!observers_.empty()) {
    pending_notify_.push_back(PendingNotify{note, kInvalidNoteId});
  }
  // Threshold checkpointing runs here — after the commit and the index
  // maintenance, never inside the store's commit path. With an indexer
  // attached the background drain is the (idler) checkpoint hook instead.
  if (indexer_ == nullptr) {
    DOMINO_RETURN_IF_ERROR(store_->MaybeCompact());
    DOMINO_RETURN_IF_ERROR(store_->MaybeCheckpoint());
  }
  return Status::Ok();
}

}  // namespace dominodb
