#include "core/mvcc.h"

#include <algorithm>
#include <chrono>

namespace dominodb {

namespace {
int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

MvccSnapshots::MvccSnapshots(stats::StatRegistry* registry) {
  stats::StatRegistry& reg =
      registry ? *registry : stats::StatRegistry::Global();
  gauge_pinned_ = &reg.GetGauge("Db.Mvcc.PinnedEpochs");
  gauge_live_versions_ = &reg.GetGauge("Db.Mvcc.LiveVersions");
  ctr_reclaimed_ = &reg.GetCounter("Db.Mvcc.ReclaimedVersions");
  gauge_oldest_pin_age_us_ = &reg.GetGauge("Db.Mvcc.OldestPinAgeMicros");
}

Epoch MvccSnapshots::Pin() {
  MutexLock lock(&mu_);
  Epoch e = committed_.load(std::memory_order_relaxed);
  PinInfo& info = pins_[e];
  if (info.count++ == 0) info.earliest_us = SteadyNowMicros();
  gauge_pinned_->Add(1);
  RefreshPinAgeLocked();
  return e;
}

void MvccSnapshots::Unpin(Epoch epoch) {
  MutexLock lock(&mu_);
  auto it = pins_.find(epoch);
  if (it == pins_.end()) return;  // defensive: unmatched unpin
  gauge_pinned_->Add(-1);
  if (--it->second.count == 0) {
    pins_.erase(it);
    ReclaimLocked();
  }
  RefreshPinAgeLocked();
}

void MvccSnapshots::Record(NoteId id, Epoch epoch, NoteHandle pre) {
  MutexLock lock(&mu_);
  std::vector<Version>& versions = overlay_[id];
  if (!versions.empty() && versions.back().epoch == epoch) {
    return;  // first record per (id, epoch) wins
  }
  if (pre) unid_overlay_[pre->unid()] = id;
  versions.push_back(Version{epoch, std::move(pre)});
  ++version_count_;
  gauge_live_versions_->Set(static_cast<int64_t>(version_count_));
}

void MvccSnapshots::Publish(Epoch epoch) {
  MutexLock lock(&mu_);
  committed_.store(epoch, std::memory_order_release);
  ReclaimLocked();
  RefreshPinAgeLocked();
}

MvccSnapshots::Resolution MvccSnapshots::Lookup(NoteId id, Epoch at) const {
  MutexLock lock(&mu_);
  auto it = overlay_.find(id);
  if (it == overlay_.end()) return Resolution{};
  // Smallest commit epoch > at: its pre-image is the state at `at`.
  for (const Version& v : it->second) {
    if (v.epoch > at) {
      if (v.pre) return Resolution{Verdict::kVersion, v.pre};
      return Resolution{Verdict::kAbsent, nullptr};
    }
  }
  return Resolution{};  // every recorded commit is visible: use the store
}

std::optional<NoteId> MvccSnapshots::LookupUnid(const Unid& unid) const {
  MutexLock lock(&mu_);
  auto it = unid_overlay_.find(unid);
  if (it == unid_overlay_.end()) return std::nullopt;
  return it->second;
}

std::vector<NoteId> MvccSnapshots::OverlayIds() const {
  MutexLock lock(&mu_);
  std::vector<NoteId> ids;
  ids.reserve(overlay_.size());
  for (const auto& [id, versions] : overlay_) ids.push_back(id);
  return ids;
}

Epoch MvccSnapshots::ReclaimFloor() const {
  MutexLock lock(&mu_);
  if (!pins_.empty()) return pins_.begin()->first;
  return committed_.load(std::memory_order_relaxed);
}

void MvccSnapshots::ReclaimLocked() {
  // A version {E, pre} is needed by a reader pinned at P iff P < E.
  const Epoch floor = pins_.empty()
                          ? committed_.load(std::memory_order_relaxed)
                          : pins_.begin()->first;
  uint64_t reclaimed = 0;
  for (auto it = overlay_.begin(); it != overlay_.end();) {
    std::vector<Version>& versions = it->second;
    size_t keep = 0;
    while (keep < versions.size() && versions[keep].epoch <= floor) ++keep;
    if (keep > 0) {
      reclaimed += keep;
      versions.erase(versions.begin(),
                     versions.begin() + static_cast<ptrdiff_t>(keep));
    }
    if (versions.empty()) {
      it = overlay_.erase(it);
    } else {
      ++it;
    }
  }
  if (reclaimed > 0) {
    version_count_ -= reclaimed;
    ctr_reclaimed_->Add(reclaimed);
    gauge_live_versions_->Set(static_cast<int64_t>(version_count_));
  }
  if (overlay_.empty()) unid_overlay_.clear();
}

void MvccSnapshots::RefreshPinAgeLocked() {
  if (pins_.empty()) {
    gauge_oldest_pin_age_us_->Set(0);
    return;
  }
  int64_t earliest = pins_.begin()->second.earliest_us;
  for (const auto& [epoch, info] : pins_) {
    earliest = std::min(earliest, info.earliest_us);
  }
  gauge_oldest_pin_age_us_->Set(SteadyNowMicros() - earliest);
}

}  // namespace dominodb
