#ifndef DOMINODB_CORE_MVCC_H_
#define DOMINODB_CORE_MVCC_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/epoch.h"
#include "base/shared_mutex.h"
#include "base/thread_annotations.h"
#include "model/note.h"
#include "stats/stats.h"

namespace dominodb {

/// Epoch-based MVCC bookkeeping for one database: the committed-epoch
/// counter, the registry of pinned reader epochs, and the short-lived
/// pre-image overlay for notes mutated since the oldest pin.
///
/// Protocol (writers are serialized externally by the Database's write
/// lock; readers call Pin/Lookup/Unpin from any thread):
///
///   writer:  E = BeginCommit();            // committed + 1
///            for each note it will touch:  Record(id, E, pre_image)
///            ... apply to store / enqueue index events ...
///            Publish(E);                   // readers may now pin E
///
///   reader:  P = Pin();                    // latest published epoch
///            resolve ids: read store first, then Lookup(id, P):
///              kUseStore → the store value IS the value at P (no commit
///                          with epoch > P touched this id: pre-images
///                          are recorded before the store is modified,
///                          and commits ≤ P finished before P published)
///              kVersion  → use the returned pre-image handle
///              kAbsent   → the note did not exist at P
///            Unpin(P);
///
/// Reclamation: a pre-image recorded by commit E is needed by a reader
/// pinned at P iff P < E. Versions with E ≤ min(pinned epochs) — or all
/// versions when nothing is pinned — are dropped at Publish/Unpin.
class MvccSnapshots {
 public:
  enum class Verdict : uint8_t {
    kUseStore,  // store's current value is correct at this epoch
    kVersion,   // use the returned pre-image
    kAbsent,    // note did not exist at this epoch
  };

  struct Resolution {
    Verdict verdict = Verdict::kUseStore;
    NoteHandle note;  // set iff verdict == kVersion
  };

  explicit MvccSnapshots(stats::StatRegistry* registry);

  /// Pins the latest published epoch and returns it. The epoch is read
  /// under the same mutex Publish/reclaim hold, so a pin can never race
  /// with the reclamation of versions it needs.
  Epoch Pin();
  void Unpin(Epoch epoch);

  /// Latest published epoch (lock-free; for stats and fast paths).
  Epoch committed() const {
    return committed_.load(std::memory_order_acquire);
  }

  /// Starts a commit: returns committed() + 1. Caller must hold the
  /// database write lock (one commit in flight at a time).
  Epoch BeginCommit() const { return committed() + 1; }

  /// Records the pre-image of note `id` as of just before commit `epoch`.
  /// `pre` is null when the note did not exist. Must be called BEFORE the
  /// store is modified. The first record per (id, epoch) wins — later
  /// mutations of the same note inside one commit see an already-dirty
  /// note whose true pre-image was captured by the first call.
  void Record(NoteId id, Epoch epoch, NoteHandle pre);

  /// Publishes commit `epoch` (readers may now pin it) and reclaims
  /// versions no pinned reader can need.
  void Publish(Epoch epoch);

  /// Resolves note `id` at snapshot `at`. See class comment for the
  /// required read ordering (store first, then Lookup).
  Resolution Lookup(NoteId id, Epoch at) const;

  /// Id a purged note's UNID mapped to, for snapshot reads after the
  /// store forgot the mapping. Only consulted when the store's own UNID
  /// index misses; nullopt when the overlay has no trace either.
  std::optional<NoteId> LookupUnid(const Unid& unid) const;

  /// Ids that currently have overlay versions (purged-but-pinned scan
  /// support: callers re-resolve each via Lookup at their epoch).
  std::vector<NoteId> OverlayIds() const;

  /// Epoch below-or-at which versions are reclaimable: min pinned epoch,
  /// or committed() when nothing is pinned. View indexes use the same
  /// floor for their versioned side entries.
  Epoch ReclaimFloor() const;

  uint64_t live_versions() const {
    return static_cast<uint64_t>(gauge_live_versions_->value());
  }
  uint64_t pinned_count() const {
    return static_cast<uint64_t>(gauge_pinned_->value());
  }

 private:
  struct Version {
    Epoch epoch = kEpochNone;  // commit this is the pre-image of
    NoteHandle pre;            // null = absent before the commit
  };
  struct PinInfo {
    uint64_t count = 0;
    int64_t earliest_us = 0;  // steady-clock stamp of the oldest holder
  };

  void ReclaimLocked() REQUIRES(mu_);
  void RefreshPinAgeLocked() REQUIRES(mu_);

  mutable Mutex mu_;
  std::atomic<Epoch> committed_{kEpochNone};
  std::map<Epoch, PinInfo> pins_ GUARDED_BY(mu_);
  // Per note, pre-image versions in ascending commit-epoch order.
  std::unordered_map<NoteId, std::vector<Version>> overlay_ GUARDED_BY(mu_);
  // UNID → id for every recorded pre-image (survives store purges).
  std::unordered_map<Unid, NoteId> unid_overlay_ GUARDED_BY(mu_);
  uint64_t version_count_ GUARDED_BY(mu_) = 0;

  stats::Gauge* gauge_pinned_;
  stats::Gauge* gauge_live_versions_;
  stats::Counter* ctr_reclaimed_;
  stats::Gauge* gauge_oldest_pin_age_us_;
};

}  // namespace dominodb

#endif  // DOMINODB_CORE_MVCC_H_
