#ifndef DOMINODB_CORE_REPLICATION_HISTORY_H_
#define DOMINODB_CORE_REPLICATION_HISTORY_H_

#include <map>
#include <optional>
#include <string>

#include "base/clock.h"
#include "base/shared_mutex.h"

namespace dominodb {

/// Per-database replication history: for each peer, the cutoff timestamp
/// of the last successful replication. The incremental-replication claim
/// of the paper hangs on this: only notes modified after the cutoff are
/// summarized and shipped.
///
/// The history also protects deletions. PurgeStubs consults MinCutoff()
/// before physically removing a stub: a stub some recorded peer has not
/// yet seen must survive, or that peer's live copy replicates back and
/// silently undoes the delete (the classic resurrection anomaly).
///
/// Thread-safe: the replicator records cutoffs while the purge task (or a
/// concurrent session with another peer) reads them.
class ReplicationHistory {
 public:
  /// 0 when the pair never replicated (full scan).
  Micros CutoffFor(const std::string& peer) const;
  /// Keeps the maximum per peer, so a stale report never rewinds progress.
  void Record(const std::string& peer, Micros cutoff);
  void Clear();

  /// The least-caught-up recorded peer's cutoff: every recorded peer has
  /// seen all changes stamped at or below this value. Empty history (the
  /// database never replicated) returns nullopt — no clamp applies.
  std::optional<Micros> MinCutoff() const;

 private:
  mutable Mutex mu_;
  std::map<std::string, Micros> cutoffs_ GUARDED_BY(mu_);
};

}  // namespace dominodb

#endif  // DOMINODB_CORE_REPLICATION_HISTORY_H_
