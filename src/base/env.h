#ifndef DOMINODB_BASE_ENV_H_
#define DOMINODB_BASE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "base/status.h"

namespace dominodb {

/// Append-only file handle used by the WAL and checkpoint writer.
/// Sync() issues fsync so commit durability is real (experiment E7
/// compares sync modes).
class WritableFile {
 public:
  ~WritableFile();

  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  /// Opens `path` for appending, creating it if missing.
  static Result<std::unique_ptr<WritableFile>> Open(const std::string& path);

  Status Append(std::string_view data);
  Status Flush();
  Status Sync();
  Status Close();

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  explicit WritableFile(int fd) : fd_(fd) {}

  int fd_;
  uint64_t bytes_written_ = 0;
  std::string buffer_;
};

/// Random-access file handle (pread/pwrite) used by the pager's page
/// file. Reads and writes are positioned and do not share a cursor, so
/// concurrent readers are safe; writers must be externally serialized
/// against writers to the same range.
class RandomAccessFile {
 public:
  ~RandomAccessFile();

  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  /// Opens `path` read/write, creating it if missing.
  static Result<std::unique_ptr<RandomAccessFile>> Open(
      const std::string& path);

  /// Reads exactly `n` bytes at `offset` into `out`. Returns
  /// OutOfRange when the file ends before `offset + n` (a torn or
  /// never-written page, for the pager).
  Status Read(uint64_t offset, size_t n, char* out) const;

  /// Writes all of `data` at `offset`, extending the file as needed.
  Status Write(uint64_t offset, std::string_view data);

  Status Sync();
  Status Truncate(uint64_t size);
  Result<uint64_t> Size() const;

 private:
  explicit RandomAccessFile(int fd) : fd_(fd) {}

  int fd_;
};

/// Reads the entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `data` to `path` atomically (tmp file + rename + dir fsync).
Status WriteFileAtomic(const std::string& path, std::string_view data);

bool FileExists(const std::string& path);
Status RemoveFileIfExists(const std::string& path);
Status CreateDirIfMissing(const std::string& path);
/// Removes a directory tree (used by tests/benches for scratch dirs).
Status RemoveDirRecursively(const std::string& path);
Result<uint64_t> FileSize(const std::string& path);

/// Truncates `path` to `size` bytes (crash-injection helper for tests).
Status TruncateFile(const std::string& path, uint64_t size);

/// Crash-injection helper built on TruncateFile: models a torn sector
/// write by cutting the file at `offset` and re-extending it to its
/// original size with zero bytes. The range [offset, old_size) then
/// reads back as zeros, which fails any CRC covering it — exactly what
/// a power cut in the middle of an in-place page write leaves behind.
Status SimulateTornWrite(const std::string& path, uint64_t offset);

}  // namespace dominodb

#endif  // DOMINODB_BASE_ENV_H_
