#ifndef DOMINODB_BASE_THREAD_ANNOTATIONS_H_
#define DOMINODB_BASE_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attributes (-Wthread-safety). Under GCC (or
// any compiler without the attribute) every macro expands to nothing, so
// annotated code builds everywhere while clang builds get static checking.
// scripts/check.sh runs a clang build with -Werror=thread-safety when a
// clang toolchain is available.
//
// Vocabulary (the standard capability spelling):
//  - CAPABILITY marks a lock-like class; SCOPED_CAPABILITY marks its RAII
//    guard.
//  - GUARDED_BY(mu) on a member: accesses require mu (shared for reads,
//    exclusive for writes).
//  - REQUIRES/REQUIRES_SHARED on a function: the caller must already hold
//    the capability.
//  - ACQUIRE/RELEASE (and _SHARED) on a function: it takes / drops the
//    capability itself.

#if defined(__clang__) && defined(__has_attribute)
#define DOMINO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DOMINO_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define CAPABILITY(x) DOMINO_THREAD_ANNOTATION(capability(x))

#define SCOPED_CAPABILITY DOMINO_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) DOMINO_THREAD_ANNOTATION(guarded_by(x))

#define PT_GUARDED_BY(x) DOMINO_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  DOMINO_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  DOMINO_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  DOMINO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  DOMINO_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  DOMINO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  DOMINO_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  DOMINO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  DOMINO_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  DOMINO_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  DOMINO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  DOMINO_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) DOMINO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  DOMINO_THREAD_ANNOTATION(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  DOMINO_THREAD_ANNOTATION(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) DOMINO_THREAD_ANNOTATION(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  DOMINO_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // DOMINODB_BASE_THREAD_ANNOTATIONS_H_
