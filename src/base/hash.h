#ifndef DOMINODB_BASE_HASH_H_
#define DOMINODB_BASE_HASH_H_

#include <cstdint>
#include <string_view>

namespace dominodb {

/// FNV-1a 64-bit hash; used for UNID generation and hash tables where a
/// stable, platform-independent hash is required.
inline uint64_t Fnv1a64(std::string_view data, uint64_t seed = 0) {
  uint64_t h = 14695981039346656037ull ^ seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Finalizer from SplitMix64; good for mixing counters into ids.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace dominodb

#endif  // DOMINODB_BASE_HASH_H_
