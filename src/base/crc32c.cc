#include "base/crc32c.h"

#include <array>

namespace dominodb::crc32c {

namespace {

// CRC-32C polynomial (reflected).
constexpr uint32_t kPoly = 0x82f63b78u;

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Extend(uint32_t init_crc, std::string_view data) {
  const auto& table = Table();
  uint32_t crc = ~init_crc;
  for (unsigned char c : data) {
    crc = table[(crc ^ c) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Mask(uint32_t crc) {
  constexpr uint32_t kMaskDelta = 0xa282ead8u;
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

uint32_t Unmask(uint32_t masked) {
  constexpr uint32_t kMaskDelta = 0xa282ead8u;
  uint32_t rot = masked - kMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace dominodb::crc32c
