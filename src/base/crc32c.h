#ifndef DOMINODB_BASE_CRC32C_H_
#define DOMINODB_BASE_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace dominodb::crc32c {

/// Returns the CRC-32C (Castagnoli) of `data` continuing from `init_crc`
/// (pass 0 for a fresh checksum).
uint32_t Extend(uint32_t init_crc, std::string_view data);

inline uint32_t Value(std::string_view data) { return Extend(0, data); }

/// CRC values stored on disk are masked so that computing the CRC of a
/// string that already contains an embedded CRC does not degenerate.
uint32_t Mask(uint32_t crc);
uint32_t Unmask(uint32_t masked);

}  // namespace dominodb::crc32c

#endif  // DOMINODB_BASE_CRC32C_H_
