#ifndef DOMINODB_BASE_STATUS_H_
#define DOMINODB_BASE_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace dominodb {

/// Error categories used throughout DominoDB. Modeled after the
/// LevelDB/Arrow convention: a `Status` is cheap to construct for the OK
/// case and carries a code + message otherwise. No exceptions cross API
/// boundaries in this codebase.
enum class StatusCode {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kCorruption = 3,
  kIOError = 4,
  kPermissionDenied = 5,
  kAlreadyExists = 6,
  kFailedPrecondition = 7,
  kUnavailable = 8,
  kSyntaxError = 9,
  kConflict = 10,
  kNotSupported = 11,
};

/// Returns a stable human-readable name for `code` (e.g. "NotFound").
std::string_view StatusCodeName(StatusCode code);

/// A value describing the outcome of an operation. OK statuses allocate
/// nothing; error statuses carry a message describing what failed.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status SyntaxError(std::string msg) {
    return Status(StatusCode::kSyntaxError, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }
  bool IsConflict() const { return code_ == StatusCode::kConflict; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace dominodb

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define DOMINO_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::dominodb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

#endif  // DOMINODB_BASE_STATUS_H_
