#include "base/clock.h"

#include <chrono>

namespace dominodb {

Micros SystemClock::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace dominodb
