#ifndef DOMINODB_BASE_RNG_H_
#define DOMINODB_BASE_RNG_H_

#include <cstdint>
#include <string>

#include "base/hash.h"

namespace dominodb {

/// Deterministic xoshiro-style PRNG (SplitMix64-seeded xorshift128+).
/// All experiments and property tests seed this explicitly so that runs
/// are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    s0_ = Mix64(seed);
    s1_ = Mix64(s0_);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Returns true with probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Random lowercase ASCII word of length in [min_len, max_len].
  std::string Word(int min_len, int max_len) {
    int len = static_cast<int>(Range(min_len, max_len));
    std::string out;
    out.reserve(len);
    for (int i = 0; i < len; ++i) {
      out.push_back(static_cast<char>('a' + Uniform(26)));
    }
    return out;
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace dominodb

#endif  // DOMINODB_BASE_RNG_H_
