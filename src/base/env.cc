#include "base/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "base/string_util.h"

namespace dominodb {

namespace {

Status ErrnoStatus(const std::string& context) {
  return Status::IOError(context + ": " + std::strerror(errno));
}

constexpr size_t kWriteBufferSize = 64 * 1024;

}  // namespace

WritableFile::~WritableFile() {
  if (fd_ >= 0) {
    Flush().ok();
    ::close(fd_);
  }
}

Result<std::unique_ptr<WritableFile>> WritableFile::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  return std::unique_ptr<WritableFile>(new WritableFile(fd));
}

Status WritableFile::Append(std::string_view data) {
  buffer_.append(data);
  bytes_written_ += data.size();
  if (buffer_.size() >= kWriteBufferSize) return Flush();
  return Status::Ok();
}

Status WritableFile::Flush() {
  size_t off = 0;
  while (off < buffer_.size()) {
    ssize_t n = ::write(fd_, buffer_.data() + off, buffer_.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write");
    }
    off += static_cast<size_t>(n);
  }
  buffer_.clear();
  return Status::Ok();
}

Status WritableFile::Sync() {
  DOMINO_RETURN_IF_ERROR(Flush());
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync");
  return Status::Ok();
}

Status WritableFile::Close() {
  DOMINO_RETURN_IF_ERROR(Flush());
  int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return ErrnoStatus("close");
  return Status::Ok();
}

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<RandomAccessFile>> RandomAccessFile::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  return std::unique_ptr<RandomAccessFile>(new RandomAccessFile(fd));
}

Status RandomAccessFile::Read(uint64_t offset, size_t n, char* out) const {
  size_t done = 0;
  while (done < n) {
    ssize_t got = ::pread(fd_, out + done, n - done,
                          static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread");
    }
    if (got == 0) {
      return Status::IOError("short read at offset " +
                             std::to_string(offset + done));
    }
    done += static_cast<size_t>(got);
  }
  return Status::Ok();
}

Status RandomAccessFile::Write(uint64_t offset, std::string_view data) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                         static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pwrite");
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status RandomAccessFile::Sync() {
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync");
  return Status::Ok();
}

Status RandomAccessFile::Truncate(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("ftruncate");
  }
  return Status::Ok();
}

Result<uint64_t> RandomAccessFile::Size() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) return ErrnoStatus("fstat");
  return static_cast<uint64_t>(st.st_size);
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return ErrnoStatus("open " + path);
  }
  std::string out;
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus("read " + path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open " + tmp);
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus("write " + tmp);
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return ErrnoStatus("fsync " + tmp);
  }
  if (::close(fd) != 0) return ErrnoStatus("close " + tmp);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return ErrnoStatus("rename " + tmp);
  }
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("unlink " + path);
  }
  return Status::Ok();
}

Status CreateDirIfMissing(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) return Status::IOError("mkdir " + path + ": " + ec.message());
  return Status::Ok();
}

Status RemoveDirRecursively(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove_all(path, ec);
  if (ec) return Status::IOError("rm -r " + path + ": " + ec.message());
  return Status::Ok();
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return ErrnoStatus("stat " + path);
  return static_cast<uint64_t>(st.st_size);
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("truncate " + path);
  }
  return Status::Ok();
}

Status SimulateTornWrite(const std::string& path, uint64_t offset) {
  DOMINO_ASSIGN_OR_RETURN(uint64_t size, FileSize(path));
  if (offset > size) {
    return Status::InvalidArgument("torn-write offset beyond file end");
  }
  DOMINO_RETURN_IF_ERROR(TruncateFile(path, offset));
  // Re-extend to the original size; the cut range reads back as zeros.
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("truncate " + path);
  }
  return Status::Ok();
}

}  // namespace dominodb
