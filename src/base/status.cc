#include "base/status.h"

namespace dominodb {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kSyntaxError:
      return "SyntaxError";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kNotSupported:
      return "NotSupported";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out.append(": ");
  out.append(message_);
  return out;
}

}  // namespace dominodb
