#ifndef DOMINODB_BASE_EPOCH_H_
#define DOMINODB_BASE_EPOCH_H_

#include <cstdint>

namespace dominodb {

/// Snapshot epoch: a per-database monotonic commit counter. Every commit
/// batch publishes a new epoch; readers pin one and observe the database
/// exactly as of that commit. Epoch numbers advance in the same order as
/// the wal::SharedLog sequence numbers the commits append under — both are
/// assigned while the single writer holds the database mutation lock.
using Epoch = uint64_t;

/// "No epoch": used both as the null pin value and as the added-epoch of
/// entries that predate versioning (visible at every snapshot).
inline constexpr Epoch kEpochNone = 0;

/// "Never removed" sentinel for versioned entries' removed_epoch.
inline constexpr Epoch kEpochMax = UINT64_MAX;

/// Pseudo-epoch meaning "read the latest committed state". Strictly below
/// kEpochMax so entries with removed_epoch == kEpochMax stay visible.
inline constexpr Epoch kEpochLatest = UINT64_MAX - 1;

/// Half-open visibility interval test: an entry added at `added` and
/// removed at `removed` (kEpochMax if never) is visible to a reader
/// pinned at `at` iff it was added at or before `at` and removed after.
inline constexpr bool EpochVisible(Epoch added, Epoch removed, Epoch at) {
  return added <= at && at < removed;
}

}  // namespace dominodb

#endif  // DOMINODB_BASE_EPOCH_H_
