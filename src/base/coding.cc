#include "base/coding.h"

#include <cstring>

namespace dominodb {

void PutFixed16(std::string* dst, uint16_t value) {
  char buf[2];
  buf[0] = static_cast<char>(value & 0xff);
  buf[1] = static_cast<char>((value >> 8) & 0xff);
  dst->append(buf, 2);
}

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  dst->append(buf, 8);
}

bool GetFixed16(std::string_view* input, uint16_t* value) {
  if (input->size() < 2) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(input->data());
  *value = static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
  input->remove_prefix(2);
  return true;
}

bool GetFixed32(std::string_view* input, uint32_t* value) {
  if (input->size() < 4) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(input->data());
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  *value = v;
  input->remove_prefix(4);
  return true;
}

bool GetFixed64(std::string_view* input, uint64_t* value) {
  if (input->size() < 8) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(input->data());
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  *value = v;
  input->remove_prefix(8);
  return true;
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<const char*>(buf), n);
}

bool GetVarint64(std::string_view* input, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    auto byte = static_cast<unsigned char>(input->front());
    input->remove_prefix(1);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
  }
  return false;
}

bool GetVarint32(std::string_view* input, uint32_t* value) {
  uint64_t v = 0;
  if (!GetVarint64(input, &v) || v > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v);
  return true;
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

bool GetLengthPrefixed(std::string_view* input, std::string_view* value) {
  uint64_t len = 0;
  if (!GetVarint64(input, &len)) return false;
  if (input->size() < len) return false;
  *value = input->substr(0, len);
  input->remove_prefix(len);
  return true;
}

uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

void PutVarSigned64(std::string* dst, int64_t value) {
  PutVarint64(dst, ZigZagEncode(value));
}

bool GetVarSigned64(std::string_view* input, int64_t* value) {
  uint64_t v = 0;
  if (!GetVarint64(input, &v)) return false;
  *value = ZigZagDecode(v);
  return true;
}

void PutOrderedDouble(std::string* dst, double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  // Flip so that lexicographic byte order equals numeric order: positives
  // get the sign bit set; negatives are fully inverted.
  if (bits >> 63) {
    bits = ~bits;
  } else {
    bits |= 1ull << 63;
  }
  // Big-endian append so the most significant byte compares first.
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((bits >> (8 * (7 - i))) & 0xff);
  }
  dst->append(buf, 8);
}

bool GetOrderedDouble(std::string_view* input, double* value) {
  if (input->size() < 8) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(input->data());
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits = (bits << 8) | p[i];
  }
  if (bits >> 63) {
    bits &= ~(1ull << 63);
  } else {
    bits = ~bits;
  }
  std::memcpy(value, &bits, sizeof(bits));
  input->remove_prefix(8);
  return true;
}

}  // namespace dominodb
