#include "base/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace dominodb {

char AsciiToLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

char AsciiToUpper(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = AsciiToLower(c);
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = AsciiToUpper(c);
  return out;
}

std::string ToProperCase(std::string_view s) {
  std::string out(s);
  bool at_word_start = true;
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n') {
      at_word_start = true;
    } else {
      c = at_word_start ? AsciiToUpper(c) : AsciiToLower(c);
      at_word_start = false;
    }
  }
  return out;
}

int CompareIgnoreCase(std::string_view a, std::string_view b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    char ca = AsciiToLower(a[i]);
    char cb = AsciiToLower(b[i]);
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  return a.size() == b.size() && CompareIgnoreCase(a, b) == 0;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (haystack.size() < needle.size()) return false;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    size_t j = 0;
    while (j < needle.size() &&
           AsciiToLower(haystack[i + j]) == AsciiToLower(needle[j])) {
      ++j;
    }
    if (j == needle.size()) return true;
  }
  return false;
}

std::vector<std::string> Split(std::string_view s,
                               std::string_view separators) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (separators.find(c) != std::string_view::npos) {
      out.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(std::move(current));
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t' ||
                         s[begin] == '\n' || s[begin] == '\r')) {
    ++begin;
  }
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t' ||
                         s[end - 1] == '\n' || s[end - 1] == '\r')) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

std::string StrPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

bool WildcardMatch(std::string_view pattern, std::string_view text) {
  // Iterative glob match with backtracking on the last '*'.
  size_t p = 0, t = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' ||
         AsciiToLower(pattern[p]) == AsciiToLower(text[t]))) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string HexEncode(std::string_view data) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (unsigned char c : data) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xf]);
  }
  return out;
}

}  // namespace dominodb
