#ifndef DOMINODB_BASE_SHARED_MUTEX_H_
#define DOMINODB_BASE_SHARED_MUTEX_H_

#include <mutex>
#include <shared_mutex>

#include "base/thread_annotations.h"

namespace dominodb {

/// std::mutex with thread-safety-analysis annotations, so members can be
/// GUARDED_BY it and functions can REQUIRES it.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII guard for Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// std::shared_mutex with thread-safety-analysis annotations. Non-recursive:
/// callers that may re-enter (the Database) layer their own ownership
/// tracking on top.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive guard for SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~WriterLock() RELEASE() { mu_->Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// RAII shared guard for SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderLock() RELEASE() { mu_->UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* mu_;
};

}  // namespace dominodb

#endif  // DOMINODB_BASE_SHARED_MUTEX_H_
