#ifndef DOMINODB_BASE_SHARED_MUTEX_H_
#define DOMINODB_BASE_SHARED_MUTEX_H_

#include <mutex>
#include <shared_mutex>

#include "base/thread_annotations.h"

namespace dominodb {

/// std::mutex with thread-safety-analysis annotations, so members can be
/// GUARDED_BY it and functions can REQUIRES it.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII guard for Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// std::shared_mutex with thread-safety-analysis annotations. Non-recursive:
/// callers that may re-enter (the Database) layer their own ownership
/// tracking on top.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// A virtual capability ("lock role") for structures that are externally
/// synchronized by a lock they cannot name. The owner's guard acquires the
/// role together with the real mutex; the owned structure annotates its
/// entry points with REQUIRES(role) / REQUIRES_SHARED(role), giving static
/// checking of the "caller synchronizes" contract across module boundaries.
class CAPABILITY("role") LockRole {
 public:
  constexpr LockRole() = default;
  LockRole(const LockRole&) = delete;
  LockRole& operator=(const LockRole&) = delete;
};

/// The role standing for "the owning Database's reader/writer lock". View
/// indexes, the full-text index and the indexer queue have no mutex of
/// their own; they require this role instead, and the Database's lock
/// guards acquire it alongside the real SharedMutex.
inline constexpr LockRole db_index_lock;

}  // namespace dominodb

#endif  // DOMINODB_BASE_SHARED_MUTEX_H_
