#ifndef DOMINODB_BASE_RESULT_H_
#define DOMINODB_BASE_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "base/status.h"

namespace dominodb {

/// A Status or a value of type T. The usual pattern:
///
///   Result<Note> r = db.ReadNote(id);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class Result {
 public:
  /// Constructs an OK result holding `value`. Intentionally implicit so
  /// functions can `return value;`.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT

  /// Constructs an error result. `status` must not be OK. Intentionally
  /// implicit so functions can `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dominodb

/// Assigns the value of a Result expression to `lhs`, or returns its error
/// status from the enclosing function.
#define DOMINO_ASSIGN_OR_RETURN(lhs, rexpr)         \
  DOMINO_ASSIGN_OR_RETURN_IMPL_(                    \
      DOMINO_RESULT_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define DOMINO_RESULT_CONCAT_INNER_(a, b) a##b
#define DOMINO_RESULT_CONCAT_(a, b) DOMINO_RESULT_CONCAT_INNER_(a, b)
#define DOMINO_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#endif  // DOMINODB_BASE_RESULT_H_
