#ifndef DOMINODB_BASE_CODING_H_
#define DOMINODB_BASE_CODING_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace dominodb {

/// Little-endian fixed-width and varint encoders/decoders used by the WAL,
/// the note store and the collation-key builder. Decoders take a
/// `string_view*` cursor and consume bytes from its front, returning false
/// on underflow or malformed input.

void PutFixed16(std::string* dst, uint16_t value);
void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

bool GetFixed16(std::string_view* input, uint16_t* value);
bool GetFixed32(std::string_view* input, uint32_t* value);
bool GetFixed64(std::string_view* input, uint64_t* value);

void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

bool GetVarint32(std::string_view* input, uint32_t* value);
bool GetVarint64(std::string_view* input, uint64_t* value);

/// Appends a varint32 length followed by the bytes of `value`.
void PutLengthPrefixed(std::string* dst, std::string_view value);
bool GetLengthPrefixed(std::string_view* input, std::string_view* value);

/// Zig-zag coding so small negative integers stay small on the wire.
uint64_t ZigZagEncode(int64_t value);
int64_t ZigZagDecode(uint64_t value);

void PutVarSigned64(std::string* dst, int64_t value);
bool GetVarSigned64(std::string_view* input, int64_t* value);

/// Encodes a double so that the byte-wise lexicographic order of the
/// encodings matches numeric order (used for collation keys).
void PutOrderedDouble(std::string* dst, double value);
bool GetOrderedDouble(std::string_view* input, double* value);

}  // namespace dominodb

#endif  // DOMINODB_BASE_CODING_H_
