#ifndef DOMINODB_BASE_STRING_UTIL_H_
#define DOMINODB_BASE_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace dominodb {

/// ASCII-only case folding. Notes text comparison is case- and
/// accent-insensitive by default; we reproduce the case-insensitive part
/// for the ASCII range (the supported character set of this build).
char AsciiToLower(char c);
char AsciiToUpper(char c);
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// First letter of each word upper-cased, the rest lower-cased
/// (the @ProperCase semantics).
std::string ToProperCase(std::string_view s);

/// Case-insensitive comparison, returning <0, 0, >0.
int CompareIgnoreCase(std::string_view a, std::string_view b);
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Splits on any single character in `separators`; keeps empty fields.
std::vector<std::string> Split(std::string_view s, std::string_view separators);

std::string Join(const std::vector<std::string>& parts, std::string_view sep);

std::string TrimWhitespace(std::string_view s);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Wildcard match supporting '?' (one char) and '*' (any run), the
/// @Matches subset used by selective replication formulas.
bool WildcardMatch(std::string_view pattern, std::string_view text);

/// Hex encoding (lower case) used to print UNIDs.
std::string HexEncode(std::string_view data);

}  // namespace dominodb

#endif  // DOMINODB_BASE_STRING_UTIL_H_
