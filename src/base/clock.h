#ifndef DOMINODB_BASE_CLOCK_H_
#define DOMINODB_BASE_CLOCK_H_

#include <cstdint>
#include <memory>

namespace dominodb {

/// Microseconds since the Unix epoch. All Notes timestamps (note creation,
/// sequence times, replication-history cutoffs) use this unit.
using Micros = int64_t;

/// Time source abstraction. Production code uses SystemClock; every test
/// and simulation uses SimClock so that sequence times, replication
/// cutoffs and mail latencies are deterministic.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual Micros Now() const = 0;
};

/// Wall-clock time.
class SystemClock : public Clock {
 public:
  Micros Now() const override;
};

/// Manually advanced clock. Guarantees strictly monotonic reads so that
/// two updates at the "same" instant still get distinct sequence times
/// (Domino's replication tie-break needs distinguishable times).
class SimClock : public Clock {
 public:
  explicit SimClock(Micros start = 1'000'000'000'000'000) : now_(start) {}

  Micros Now() const override { return now_; }

  void Advance(Micros delta) { now_ += delta; }
  void Set(Micros t) { now_ = t; }

  /// Returns the current time and advances by one microsecond, so
  /// successive calls are strictly increasing.
  Micros Tick() { return now_++; }

 private:
  mutable Micros now_;
};

}  // namespace dominodb

#endif  // DOMINODB_BASE_CLOCK_H_
