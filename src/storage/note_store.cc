#include "storage/note_store.h"

#include <chrono>

#include "base/coding.h"
#include "base/env.h"
#include "wal/log_reader.h"

namespace dominodb {

namespace {

// Batch entry opcodes inside a kData WAL record.
constexpr uint8_t kOpPut = 1;
constexpr uint8_t kOpErase = 2;
constexpr uint8_t kOpInfo = 3;

constexpr char kSnapshotMagic[] = "DSNP1";

}  // namespace

void DatabaseInfo::EncodeTo(std::string* dst) const {
  PutFixed64(dst, replica_id.hi);
  PutFixed64(dst, replica_id.lo);
  PutLengthPrefixed(dst, title);
  PutVarSigned64(dst, purge_interval);
}

Status DatabaseInfo::DecodeFrom(std::string_view* input, DatabaseInfo* out) {
  DatabaseInfo info;
  std::string_view title;
  if (!GetFixed64(input, &info.replica_id.hi) ||
      !GetFixed64(input, &info.replica_id.lo) ||
      !GetLengthPrefixed(input, &title) ||
      !GetVarSigned64(input, &info.purge_interval)) {
    return Status::Corruption("database info: truncated");
  }
  info.title = std::string(title);
  *out = std::move(info);
  return Status::Ok();
}

NoteStore::NoteStore(std::string dir, StoreOptions options)
    : dir_(std::move(dir)), options_(options) {
  registry_ = options_.stats != nullptr ? options_.stats
                                        : &stats::StatRegistry::Global();
  ctr_docs_added_ = &registry_->GetCounter("Database.Docs.Added");
  ctr_docs_updated_ = &registry_->GetCounter("Database.Docs.Updated");
  ctr_docs_deleted_ = &registry_->GetCounter("Database.Docs.Deleted");
  ctr_docs_erased_ = &registry_->GetCounter("Database.Docs.Erased");
  ctr_stubs_purged_ = &registry_->GetCounter("Database.Stubs.Purged");
  ctr_checkpoints_ = &registry_->GetCounter("Database.Checkpoints");
  ctr_wal_records_ = &registry_->GetCounter("Database.WAL.Records");
  ctr_wal_bytes_ = &registry_->GetCounter("Database.WAL.Bytes");
  gauge_notes_ = &registry_->GetGauge("Database.Docs.Current");
  hist_commit_micros_ =
      &registry_->GetHistogram("Database.WAL.CommitMicros");
}

Result<std::unique_ptr<NoteStore>> NoteStore::Open(
    const std::string& dir, const StoreOptions& options,
    const DatabaseInfo& default_info) {
  DOMINO_RETURN_IF_ERROR(CreateDirIfMissing(dir));
  std::unique_ptr<NoteStore> store(new NoteStore(dir, options));
  DOMINO_RETURN_IF_ERROR(store->Recover(default_info));
  // Fresh = nothing on disk and nothing replayed from the shared log; the
  // seed metadata is then persisted below so the replica id survives.
  const bool fresh = !FileExists(store->SnapshotPath()) &&
                     !FileExists(store->WalPath()) &&
                     store->stats_.recovered_records == 0;
  store->registry_->GetCounter("Database.Opens").Add();
  store->gauge_notes_->Add(static_cast<int64_t>(store->note_count()));
  if (!store->uses_shared_log()) {
    DOMINO_ASSIGN_OR_RETURN(store->wal_,
                            wal::LogWriter::Open(store->WalPath(),
                                                 options.sync_mode,
                                                 store->registry_));
  }
  if (fresh) {
    // Persist the seed metadata so the replica id survives reopen.
    DOMINO_RETURN_IF_ERROR(store->UpdateInfo(store->info_));
  }
  return store;
}

Status NoteStore::Recover(const DatabaseInfo& default_info) {
  info_ = default_info;
  auto snapshot = ReadFileToString(SnapshotPath());
  if (snapshot.ok()) {
    DOMINO_RETURN_IF_ERROR(LoadSnapshot(*snapshot));
  } else if (!snapshot.status().IsNotFound()) {
    return snapshot.status();
  }
  if (uses_shared_log()) {
    DOMINO_RETURN_IF_ERROR(RecoverFromSharedLog());
  } else {
    auto log = ReadFileToString(WalPath());
    if (log.ok()) {
      wal::LogReader reader(std::move(*log));
      wal::RecordType type;
      std::string_view payload;
      while (reader.ReadRecord(&type, &payload)) {
        if (type == wal::RecordType::kData) {
          DOMINO_RETURN_IF_ERROR(ApplyBatchPayload(payload, true));
          stats_.recovered_records++;
        }
      }
      stats_.recovered_torn_tail = reader.tail_corrupted();
    } else if (!log.status().IsNotFound()) {
      return log.status();
    }
  }
  if (stats_.recovered_records > 0 || stats_.recovered_torn_tail) {
    registry_->GetCounter("Database.WAL.Recovery.Runs").Add();
    registry_->GetCounter("Database.WAL.Recovery.Records")
        .Add(stats_.recovered_records);
    if (stats_.recovered_torn_tail) {
      registry_->GetCounter("Database.WAL.Recovery.TornTails").Add();
    }
    registry_->events().Log(
        stats_.recovered_torn_tail ? stats::Severity::kWarning
                                   : stats::Severity::kNormal,
        "Store",
        "WAL recovery ran: replayed " +
            std::to_string(stats_.recovered_records) + " record(s)" +
            (stats_.recovered_torn_tail ? ", torn tail discarded" : ""));
  }
  return Status::Ok();
}

Status NoteStore::RecoverFromSharedLog() {
  // Collect this stream's records, then apply only the suffix after its
  // last checkpoint marker: everything at or before the marker is already
  // captured in the snapshot loaded above. (The marker is committed right
  // after its snapshot, so if a crash separates the two, replaying from
  // the previous marker is still correct — records are whole note states,
  // and an ordered replay converges on the newest version.)
  struct Rec {
    wal::RecordType type;
    std::string payload;
  };
  std::vector<Rec> records;
  bool torn = false;
  DOMINO_RETURN_IF_ERROR(options_.shared_log->ReplayStream(
      options_.shared_stream,
      [&records](wal::RecordType type, std::string_view payload) {
        records.push_back(Rec{type, std::string(payload)});
        return Status::Ok();
      },
      &torn));
  size_t start = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].type == wal::RecordType::kCheckpoint) start = i + 1;
  }
  for (size_t i = start; i < records.size(); ++i) {
    if (records[i].type != wal::RecordType::kData) continue;
    DOMINO_RETURN_IF_ERROR(ApplyBatchPayload(records[i].payload, true));
    stats_.recovered_records++;
  }
  stats_.recovered_torn_tail = torn;
  return Status::Ok();
}

std::string NoteStore::EncodeSnapshot() const {
  std::string out(kSnapshotMagic);
  info_.EncodeTo(&out);
  PutFixed32(&out, next_id_);
  PutVarint64(&out, notes_.size());
  for (const auto& [id, note] : notes_) {
    std::string encoded = note.EncodeToString();
    PutLengthPrefixed(&out, encoded);
  }
  return out;
}

Status NoteStore::LoadSnapshot(std::string_view data) {
  if (data.size() < sizeof(kSnapshotMagic) - 1 ||
      data.substr(0, sizeof(kSnapshotMagic) - 1) != kSnapshotMagic) {
    return Status::Corruption("snapshot: bad magic");
  }
  std::string_view input = data.substr(sizeof(kSnapshotMagic) - 1);
  DOMINO_RETURN_IF_ERROR(DatabaseInfo::DecodeFrom(&input, &info_));
  uint32_t next_id = 0;
  uint64_t count = 0;
  if (!GetFixed32(&input, &next_id) || !GetVarint64(&input, &count)) {
    return Status::Corruption("snapshot: truncated header");
  }
  next_id_ = next_id;
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view encoded;
    if (!GetLengthPrefixed(&input, &encoded)) {
      return Status::Corruption("snapshot: truncated note");
    }
    Note note;
    DOMINO_RETURN_IF_ERROR(Note::DecodeFromString(encoded, &note));
    IndexNote(note);
    notes_[note.id()] = std::move(note);
  }
  return Status::Ok();
}

Result<Note> NoteStore::Get(NoteId id) const {
  auto it = notes_.find(id);
  if (it == notes_.end()) {
    return Status::NotFound("note id " + std::to_string(id));
  }
  return it->second;
}

Result<Note> NoteStore::GetByUnid(const Unid& unid) const {
  auto it = unid_index_.find(unid);
  if (it == unid_index_.end()) {
    return Status::NotFound("unid " + unid.ToString());
  }
  return Get(it->second);
}

const Note* NoteStore::FindPtr(NoteId id) const {
  auto it = notes_.find(id);
  return it == notes_.end() ? nullptr : &it->second;
}

const Note* NoteStore::FindPtrByUnid(const Unid& unid) const {
  auto it = unid_index_.find(unid);
  return it == unid_index_.end() ? nullptr : FindPtr(it->second);
}

void NoteStore::ForEach(const std::function<void(const Note&)>& fn) const {
  for (const auto& [id, note] : notes_) fn(note);
}

void NoteStore::IndexNote(const Note& note) {
  unid_index_[note.unid()] = note.id();
  if (note.deleted()) ++stub_count_;
  if (note.id() >= next_id_) next_id_ = note.id() + 1;
}

void NoteStore::UnindexNote(const Note& note) {
  unid_index_.erase(note.unid());
  if (note.deleted()) --stub_count_;
}

Status NoteStore::ApplyBatchPayload(std::string_view payload,
                                    bool from_recovery) {
  (void)from_recovery;
  std::string_view input = payload;
  uint64_t count = 0;
  if (!GetVarint64(&input, &count)) {
    return Status::Corruption("batch: bad count");
  }
  for (uint64_t i = 0; i < count; ++i) {
    if (input.empty()) return Status::Corruption("batch: truncated op");
    uint8_t op = static_cast<uint8_t>(input.front());
    input.remove_prefix(1);
    switch (op) {
      case kOpPut: {
        std::string_view encoded;
        if (!GetLengthPrefixed(&input, &encoded)) {
          return Status::Corruption("batch: truncated put");
        }
        Note note;
        DOMINO_RETURN_IF_ERROR(Note::DecodeFromString(encoded, &note));
        auto it = notes_.find(note.id());
        if (it != notes_.end()) UnindexNote(it->second);
        IndexNote(note);
        notes_[note.id()] = std::move(note);
        break;
      }
      case kOpErase: {
        uint32_t id = 0;
        if (!GetFixed32(&input, &id)) {
          return Status::Corruption("batch: truncated erase");
        }
        auto it = notes_.find(id);
        if (it != notes_.end()) {
          UnindexNote(it->second);
          notes_.erase(it);
        }
        break;
      }
      case kOpInfo: {
        std::string_view encoded;
        if (!GetLengthPrefixed(&input, &encoded)) {
          return Status::Corruption("batch: truncated info");
        }
        std::string_view cursor = encoded;
        DOMINO_RETURN_IF_ERROR(DatabaseInfo::DecodeFrom(&cursor, &info_));
        break;
      }
      default:
        return Status::Corruption("batch: unknown op");
    }
  }
  return Status::Ok();
}

Status NoteStore::CommitPayload(const std::string& payload) {
  auto start = std::chrono::steady_clock::now();
  if (uses_shared_log()) {
    DOMINO_RETURN_IF_ERROR(options_.shared_log->Commit(
        options_.shared_stream, wal::RecordType::kData, payload));
    shared_bytes_since_checkpoint_ += payload.size();
    stats_.wal_bytes_written = shared_bytes_since_checkpoint_;
  } else {
    DOMINO_RETURN_IF_ERROR(
        wal_->AppendRecord(wal::RecordType::kData, payload));
    stats_.wal_bytes_written = wal_->bytes_written();
  }
  hist_commit_micros_->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  stats_.wal_records_written++;
  ctr_wal_records_->Add();
  ctr_wal_bytes_->Add(payload.size());
  return Status::Ok();
}

Status NoteStore::MaybeCheckpoint() {
  if (options_.checkpoint_threshold_bytes == 0) return Status::Ok();
  const uint64_t obligation = uses_shared_log()
                                  ? shared_bytes_since_checkpoint_
                                  : (wal_ != nullptr ? wal_->bytes_written()
                                                     : 0);
  if (obligation <= options_.checkpoint_threshold_bytes) return Status::Ok();
  return Checkpoint();
}

Status NoteStore::Put(Note* note) {
  if (note->id() == kInvalidNoteId) note->set_id(AllocateId());
  if (note->unid().IsNull()) {
    return Status::InvalidArgument("note has null UNID; stamp it first");
  }
  std::string payload;
  PutVarint64(&payload, 1);
  payload.push_back(static_cast<char>(kOpPut));
  std::string encoded = note->EncodeToString();
  PutLengthPrefixed(&payload, encoded);
  DOMINO_RETURN_IF_ERROR(CommitPayload(payload));
  auto it = notes_.find(note->id());
  const bool existed = it != notes_.end();
  const bool was_live = existed && !it->second.deleted();
  if (existed) UnindexNote(it->second);
  IndexNote(*note);
  notes_[note->id()] = *note;
  CountPut(existed, was_live, note->deleted());
  return Status::Ok();
}

void NoteStore::CountPut(bool existed, bool was_live, bool now_deleted) {
  if (now_deleted) {
    ctr_docs_deleted_->Add();
    if (was_live) gauge_notes_->Add(-1);
  } else if (!existed) {
    ctr_docs_added_->Add();
    gauge_notes_->Add(1);
  } else {
    ctr_docs_updated_->Add();
    // A live note replacing a stub (replication resurrect) re-enters the
    // live population.
    if (!was_live) gauge_notes_->Add(1);
  }
}

Status NoteStore::PutBatch(std::vector<Note>* batch) {
  if (batch->empty()) return Status::Ok();
  std::string payload;
  PutVarint64(&payload, batch->size());
  for (Note& note : *batch) {
    if (note.id() == kInvalidNoteId) note.set_id(AllocateId());
    if (note.unid().IsNull()) {
      return Status::InvalidArgument("note has null UNID; stamp it first");
    }
    payload.push_back(static_cast<char>(kOpPut));
    std::string encoded = note.EncodeToString();
    PutLengthPrefixed(&payload, encoded);
  }
  DOMINO_RETURN_IF_ERROR(CommitPayload(payload));
  for (const Note& note : *batch) {
    auto it = notes_.find(note.id());
    const bool existed = it != notes_.end();
    const bool was_live = existed && !it->second.deleted();
    if (existed) UnindexNote(it->second);
    IndexNote(note);
    notes_[note.id()] = note;
    CountPut(existed, was_live, note.deleted());
  }
  return Status::Ok();
}

Status NoteStore::Erase(NoteId id) {
  auto it = notes_.find(id);
  if (it == notes_.end()) {
    return Status::NotFound("note id " + std::to_string(id));
  }
  std::string payload;
  PutVarint64(&payload, 1);
  payload.push_back(static_cast<char>(kOpErase));
  PutFixed32(&payload, id);
  DOMINO_RETURN_IF_ERROR(CommitPayload(payload));
  ctr_docs_erased_->Add();
  if (!it->second.deleted()) gauge_notes_->Add(-1);
  UnindexNote(it->second);
  notes_.erase(it);
  return Status::Ok();
}

Result<size_t> NoteStore::PurgeStubs(Micros now) {
  std::vector<NoteId> victims;
  Micros cutoff = now - info_.purge_interval;
  for (const auto& [id, note] : notes_) {
    if (note.deleted() && note.sequence_time() < cutoff) {
      victims.push_back(id);
    }
  }
  for (NoteId id : victims) {
    DOMINO_RETURN_IF_ERROR(Erase(id));
  }
  ctr_stubs_purged_->Add(victims.size());
  return victims.size();
}

Status NoteStore::UpdateInfo(const DatabaseInfo& info) {
  std::string payload;
  PutVarint64(&payload, 1);
  payload.push_back(static_cast<char>(kOpInfo));
  std::string encoded;
  info.EncodeTo(&encoded);
  PutLengthPrefixed(&payload, encoded);
  DOMINO_RETURN_IF_ERROR(CommitPayload(payload));
  info_ = info;
  return Status::Ok();
}

Status NoteStore::Checkpoint() {
  DOMINO_RETURN_IF_ERROR(WriteFileAtomic(SnapshotPath(), EncodeSnapshot()));
  if (uses_shared_log()) {
    // Marker first (recovery skips everything at or before it), then
    // advance this stream's low-water mark so segments every stream has
    // checkpointed past can be physically dropped.
    DOMINO_RETURN_IF_ERROR(options_.shared_log->Commit(
        options_.shared_stream, wal::RecordType::kCheckpoint, ""));
    DOMINO_RETURN_IF_ERROR(
        options_.shared_log->AdvanceCheckpoint(options_.shared_stream));
    shared_bytes_since_checkpoint_ = 0;
  } else {
    // Start a fresh WAL; the snapshot now carries all state.
    wal_.reset();
    DOMINO_RETURN_IF_ERROR(RemoveFileIfExists(WalPath()));
    DOMINO_ASSIGN_OR_RETURN(wal_,
                            wal::LogWriter::Open(WalPath(),
                                                 options_.sync_mode,
                                                 registry_));
  }
  stats_.checkpoints++;
  ctr_checkpoints_->Add();
  return Status::Ok();
}

uint64_t NoteStore::wal_size_bytes() const {
  if (uses_shared_log()) return shared_bytes_since_checkpoint_;
  auto size = FileSize(WalPath());
  return size.ok() ? *size : 0;
}

}  // namespace dominodb
