#include "storage/note_store.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "base/coding.h"
#include "base/crc32c.h"
#include "base/env.h"
#include "wal/log_reader.h"

namespace dominodb {

namespace {

// Batch entry opcodes inside a kData WAL record.
constexpr uint8_t kOpPut = 1;
constexpr uint8_t kOpErase = 2;
constexpr uint8_t kOpInfo = 3;

constexpr char kSnapshotMagic[] = "DSNP1";
constexpr char kMetaMagic[] = "DMET1";
constexpr uint8_t kMetaVersion = 1;
constexpr uint8_t kPagerSnapshotVersion = 1;

// Id-table entry: unid(16) + page(4) + slot(2) + flags(1) + pad(1) +
// sequence time(8).
constexpr size_t kIdEntrySize = 32;
constexpr uint8_t kEntryUsed = 1;
constexpr uint8_t kEntryDeleted = 2;
constexpr uint8_t kEntryOverflow = 4;

// A bucket slot costs its length prefix (2) plus its directory word (2)
// on top of the payload bytes.
constexpr size_t kSlotOverhead = 4;
constexpr uint16_t kDeadSlot = 0xFFFF;

using pager::kInvalidPage;
using pager::kPageHeaderSize;
using pager::LoadU16;
using pager::LoadU32;
using pager::LoadU64;
using pager::StoreU16;
using pager::StoreU32;
using pager::StoreU64;

uint16_t PageNSlots(const char* page) {
  return LoadU16(page + pager::kPageNSlotsOffset);
}
uint16_t PageFreeOff(const char* page) {
  return LoadU16(page + pager::kPageFreeOffOffset);
}
uint32_t PageNext(const char* page) {
  return LoadU32(page + pager::kPageNextOffset);
}
uint8_t PageTypeOf(const char* page) {
  return static_cast<uint8_t>(page[pager::kPageTypeOffset]);
}
// Directory word of slot `i` sits at the page tail, growing downward.
size_t DirOffset(uint32_t page_size, size_t i) {
  return page_size - 2 * (i + 1);
}

}  // namespace

void DatabaseInfo::EncodeTo(std::string* dst) const {
  PutFixed64(dst, replica_id.hi);
  PutFixed64(dst, replica_id.lo);
  PutLengthPrefixed(dst, title);
  PutVarSigned64(dst, purge_interval);
}

Status DatabaseInfo::DecodeFrom(std::string_view* input, DatabaseInfo* out) {
  DatabaseInfo info;
  std::string_view title;
  if (!GetFixed64(input, &info.replica_id.hi) ||
      !GetFixed64(input, &info.replica_id.lo) ||
      !GetLengthPrefixed(input, &title) ||
      !GetVarSigned64(input, &info.purge_interval)) {
    return Status::Corruption("database info: truncated");
  }
  info.title = std::string(title);
  *out = std::move(info);
  return Status::Ok();
}

NoteStore::NoteStore(std::string dir, StoreOptions options)
    : dir_(std::move(dir)), options_(std::move(options)) {
  registry_ = options_.stats != nullptr ? options_.stats
                                        : &stats::StatRegistry::Global();
  ctr_docs_added_ = &registry_->GetCounter("Database.Docs.Added");
  ctr_docs_updated_ = &registry_->GetCounter("Database.Docs.Updated");
  ctr_docs_deleted_ = &registry_->GetCounter("Database.Docs.Deleted");
  ctr_docs_erased_ = &registry_->GetCounter("Database.Docs.Erased");
  ctr_stubs_purged_ = &registry_->GetCounter("Database.Stubs.Purged");
  ctr_checkpoints_ = &registry_->GetCounter("Database.Checkpoints");
  ctr_wal_records_ = &registry_->GetCounter("Database.WAL.Records");
  ctr_wal_bytes_ = &registry_->GetCounter("Database.WAL.Bytes");
  ctr_compact_runs_ = &registry_->GetCounter("Store.Compact.Runs");
  ctr_compact_pages_ = &registry_->GetCounter("Store.Compact.PagesReclaimed");
  ctr_compact_bytes_ = &registry_->GetCounter("Store.Compact.BytesReclaimed");
  ctr_compact_moved_ = &registry_->GetCounter("Store.Compact.NotesMoved");
  ctr_pages_freed_inline_ = &registry_->GetCounter("Store.Pages.FreedInline");
  gauge_notes_ = &registry_->GetGauge("Database.Docs.Current");
  gauge_dead_bytes_ = &registry_->GetGauge("Store.DeadBytes");
  hist_commit_micros_ =
      &registry_->GetHistogram("Database.WAL.CommitMicros");
}

Result<std::unique_ptr<NoteStore>> NoteStore::Open(
    const std::string& dir, const StoreOptions& options,
    const DatabaseInfo& default_info) {
  DOMINO_RETURN_IF_ERROR(CreateDirIfMissing(dir));
  std::unique_ptr<NoteStore> store(new NoteStore(dir, options));

  // An existing meta file is authoritative for the page size; the pager
  // must be opened with it before anything else touches pages.
  std::string meta_blob;
  bool have_meta = false;
  uint32_t page_size = options.page_size;
  auto meta_bytes = ReadFileToString(store->MetaPath());
  if (meta_bytes.ok()) {
    std::string_view raw = *meta_bytes;
    constexpr size_t kMagicLen = sizeof(kMetaMagic) - 1;
    if (raw.size() < kMagicLen + 4 + 5 ||
        raw.substr(0, kMagicLen) != kMetaMagic) {
      return Status::Corruption("notes.meta: bad magic");
    }
    std::string_view body = raw.substr(kMagicLen, raw.size() - kMagicLen - 4);
    std::string_view crc_bytes = raw.substr(raw.size() - 4);
    uint32_t stored = 0;
    GetFixed32(&crc_bytes, &stored);
    if (crc32c::Unmask(stored) != crc32c::Value(body)) {
      return Status::Corruption("notes.meta: CRC mismatch");
    }
    if (static_cast<uint8_t>(body[0]) != kMetaVersion) {
      return Status::Corruption("notes.meta: unknown version");
    }
    std::string_view peek = body.substr(1);
    if (!GetFixed32(&peek, &page_size)) {
      return Status::Corruption("notes.meta: truncated");
    }
    meta_blob = std::string(body);
    have_meta = true;
  } else if (!meta_bytes.status().IsNotFound()) {
    return meta_bytes.status();
  }
  if (page_size > 32768) {
    // Slot directories and chunk lengths are 16-bit offsets.
    return Status::InvalidArgument("page size must be <= 32768");
  }

  DOMINO_ASSIGN_OR_RETURN(store->pager_,
                          pager::Pager::Open(store->PagesPath(), page_size));
  store->pool_ = std::make_unique<pager::BufferPool>(
      store->pager_.get(), options.cache_pages, store->registry_);

  {
    // Recovery runs before the store is published, but the helpers it
    // calls are annotated against the store lock — hold it for real.
    WriterLock lock(&store->mu_);
    DOMINO_RETURN_IF_ERROR(store->Recover(default_info, meta_blob, have_meta));
  }
  // Fresh = nothing on disk and nothing replayed from the shared log; the
  // seed metadata is then persisted below so the replica id survives.
  const bool fresh = !have_meta && !FileExists(store->SnapshotPath()) &&
                     !FileExists(store->WalPath()) &&
                     store->stats().recovered_records == 0;
  store->registry_->GetCounter("Database.Opens").Add();
  store->gauge_notes_->Add(static_cast<int64_t>(store->note_count()));
  if (!store->uses_shared_log()) {
    DOMINO_ASSIGN_OR_RETURN(store->wal_,
                            wal::LogWriter::Open(store->WalPath(),
                                                 options.sync_mode,
                                                 store->registry_));
  }
  if (fresh) {
    // Persist the seed metadata so the replica id survives reopen.
    DOMINO_RETURN_IF_ERROR(store->UpdateInfo(store->info()));
  }
  return store;
}

Status NoteStore::Recover(const DatabaseInfo& default_info,
                          std::string_view meta_blob, bool have_meta) {
  info_ = default_info;
  if (have_meta) {
    // Geometry only — no page reads yet. The index rebuild (which walks
    // id-table pages) waits until after WAL replay: a crash mid-checkpoint
    // can leave an id-table page torn, and the snapshot record in the log
    // must repair it before anything reads it.
    DOMINO_RETURN_IF_ERROR(DecodeMetaBlob(meta_blob));
  } else {
    // Pre-pager stores kept a monolithic snapshot; migrate it into pages
    // (it is deleted once the first checkpoint lands a meta file).
    auto snapshot = ReadFileToString(SnapshotPath());
    if (snapshot.ok()) {
      DOMINO_RETURN_IF_ERROR(LoadLegacySnapshot(*snapshot));
    } else if (!snapshot.status().IsNotFound()) {
      return snapshot.status();
    }
  }
  if (uses_shared_log()) {
    DOMINO_RETURN_IF_ERROR(RecoverFromSharedLog());
  } else {
    auto log = ReadFileToString(WalPath());
    if (log.ok()) {
      wal::LogReader reader(std::move(*log));
      wal::RecordType type;
      std::string_view payload;
      std::vector<std::pair<wal::RecordType, std::string>> records;
      while (reader.ReadRecord(&type, &payload)) {
        records.emplace_back(type, std::string(payload));
      }
      {
        MutexLock stats_lock(&stats_mu_);
        stats_.recovered_torn_tail = reader.tail_corrupted();
      }
      DOMINO_RETURN_IF_ERROR(ReplayRecords(records));
    } else if (!log.status().IsNotFound()) {
      return log.status();
    }
  }
  // Authoritative index state from the (now repaired) id-table pages.
  // Replay above maintained counts incrementally; this scan replaces them
  // with ground truth and is idempotent after a snapshot adoption.
  DOMINO_RETURN_IF_ERROR(RebuildIndexFromIdTable());
  uint64_t recovered_records = 0;
  bool torn_tail = false;
  {
    MutexLock stats_lock(&stats_mu_);
    recovered_records = stats_.recovered_records;
    torn_tail = stats_.recovered_torn_tail;
  }
  if (recovered_records > 0 || torn_tail) {
    registry_->GetCounter("Database.WAL.Recovery.Runs").Add();
    registry_->GetCounter("Database.WAL.Recovery.Records")
        .Add(recovered_records);
    if (torn_tail) {
      registry_->GetCounter("Database.WAL.Recovery.TornTails").Add();
    }
    registry_->events().Log(
        torn_tail ? stats::Severity::kWarning : stats::Severity::kNormal,
        "Store",
        "WAL recovery ran: replayed " + std::to_string(recovered_records) +
            " record(s)" + (torn_tail ? ", torn tail discarded" : ""));
  }
  return Status::Ok();
}

Status NoteStore::RecoverFromSharedLog() {
  // Collect this stream's records, then replay only the suffix after its
  // last checkpoint marker: everything at or before the marker is already
  // captured in the meta/page state loaded above.
  std::vector<std::pair<wal::RecordType, std::string>> records;
  bool torn = false;
  DOMINO_RETURN_IF_ERROR(options_.shared_log->ReplayStream(
      options_.shared_stream,
      [&records](wal::RecordType type, std::string_view payload) {
        records.emplace_back(type, std::string(payload));
        return Status::Ok();
      },
      &torn));
  size_t start = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].first == wal::RecordType::kCheckpoint) start = i + 1;
  }
  records.erase(records.begin(), records.begin() + start);
  {
    MutexLock stats_lock(&stats_mu_);
    stats_.recovered_torn_tail = torn;
  }
  return ReplayRecords(records);
}

Status NoteStore::ReplayRecords(
    const std::vector<std::pair<wal::RecordType, std::string>>& records) {
  // The last kPagerSnapshot supersedes everything before it — and its
  // page images must go down first, because they are what repairs a page
  // torn by a crashed in-place checkpoint write (replaying logical ops
  // through a torn page would fail its CRC check).
  size_t start = 0;
  for (size_t i = records.size(); i > 0; --i) {
    if (records[i - 1].first == wal::RecordType::kPagerSnapshot) {
      DOMINO_RETURN_IF_ERROR(AdoptPagerSnapshot(records[i - 1].second));
      start = i;
      break;
    }
  }
  for (size_t i = start; i < records.size(); ++i) {
    if (records[i].first != wal::RecordType::kData) continue;
    DOMINO_RETURN_IF_ERROR(ApplyBatchPayload(records[i].second, true));
    MutexLock stats_lock(&stats_mu_);
    stats_.recovered_records++;
  }
  return Status::Ok();
}

// -- Meta / snapshot encoding ---------------------------------------------

std::string NoteStore::EncodeMetaBlob() const {
  std::string out;
  out.push_back(static_cast<char>(kMetaVersion));
  PutFixed32(&out, pager_->page_size());
  PutFixed32(&out, pager_->page_count());
  PutFixed32(&out, next_id_);
  PutFixed32(&out, fill_page_);
  std::string info;
  info_.EncodeTo(&info);
  PutLengthPrefixed(&out, info);
  std::vector<uint32_t> free_pages = pager_->FreePages();
  PutVarint64(&out, free_pages.size());
  for (uint32_t pg : free_pages) PutFixed32(&out, pg);
  PutVarint64(&out, id_table_pages_.size());
  for (uint32_t pg : id_table_pages_) PutFixed32(&out, pg);
  PutVarint64(&out, dead_bytes_.size());
  for (const auto& [pg, bytes] : dead_bytes_) {
    PutFixed32(&out, pg);
    PutVarint64(&out, bytes);
  }
  return out;
}

Status NoteStore::DecodeMetaBlob(std::string_view input) {
  if (input.empty() || static_cast<uint8_t>(input[0]) != kMetaVersion) {
    return Status::Corruption("pager meta: unknown version");
  }
  input.remove_prefix(1);
  uint32_t page_size = 0;
  uint32_t page_count = 0;
  uint32_t next_id = 0;
  uint32_t fill_page = 0;
  std::string_view info_bytes;
  if (!GetFixed32(&input, &page_size) || !GetFixed32(&input, &page_count) ||
      !GetFixed32(&input, &next_id) || !GetFixed32(&input, &fill_page) ||
      !GetLengthPrefixed(&input, &info_bytes)) {
    return Status::Corruption("pager meta: truncated header");
  }
  if (page_size != pager_->page_size()) {
    return Status::Corruption("pager meta: page size mismatch");
  }
  std::string_view info_cursor = info_bytes;
  DOMINO_RETURN_IF_ERROR(DatabaseInfo::DecodeFrom(&info_cursor, &info_));
  uint64_t n = 0;
  if (!GetVarint64(&input, &n)) return Status::Corruption("pager meta: free");
  std::vector<uint32_t> free_pages(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!GetFixed32(&input, &free_pages[i])) {
      return Status::Corruption("pager meta: free list truncated");
    }
  }
  if (!GetVarint64(&input, &n)) {
    return Status::Corruption("pager meta: id table");
  }
  std::vector<uint32_t> table(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!GetFixed32(&input, &table[i])) {
      return Status::Corruption("pager meta: id table truncated");
    }
  }
  if (!GetVarint64(&input, &n)) {
    return Status::Corruption("pager meta: dead bytes");
  }
  std::map<uint32_t, uint64_t> dead;
  uint64_t dead_total = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t pg = 0;
    uint64_t bytes = 0;
    if (!GetFixed32(&input, &pg) || !GetVarint64(&input, &bytes)) {
      return Status::Corruption("pager meta: dead bytes truncated");
    }
    dead[pg] = bytes;
    dead_total += bytes;
  }
  pager_->SetState(page_count, free_pages);
  next_id_ = next_id;
  fill_page_ = fill_page;
  id_table_pages_ = std::move(table);
  dead_bytes_ = std::move(dead);
  dead_total_ = dead_total;
  gauge_dead_bytes_->Set(static_cast<int64_t>(dead_total_));
  return Status::Ok();
}

std::string NoteStore::EncodePagerSnapshot() {
  std::string out;
  out.push_back(static_cast<char>(kPagerSnapshotVersion));
  PutLengthPrefixed(&out, EncodeMetaBlob());
  std::vector<std::pair<uint32_t, std::string>> images;
  pool_->ForEachDirty([&](uint32_t pgno, char* data) {
    images.emplace_back(pgno, std::string(data, pager_->page_size()));
    return Status::Ok();
  }).ok();
  PutVarint64(&out, images.size());
  for (auto& [pgno, image] : images) {
    PutFixed32(&out, pgno);
    PutLengthPrefixed(&out, image);
  }
  return out;
}

Status NoteStore::AdoptPagerSnapshot(std::string_view payload) {
  if (payload.empty() ||
      static_cast<uint8_t>(payload[0]) != kPagerSnapshotVersion) {
    return Status::Corruption("pager snapshot: unknown version");
  }
  payload.remove_prefix(1);
  std::string_view meta_blob;
  uint64_t image_count = 0;
  if (!GetLengthPrefixed(&payload, &meta_blob) ||
      !GetVarint64(&payload, &image_count)) {
    return Status::Corruption("pager snapshot: truncated");
  }
  // Everything buffered so far (including logical ops replayed before
  // this record) is superseded by the images + meta.
  pool_->DiscardAll();
  std::string scratch;
  for (uint64_t i = 0; i < image_count; ++i) {
    uint32_t pgno = 0;
    std::string_view image;
    if (!GetFixed32(&payload, &pgno) || !GetLengthPrefixed(&payload, &image) ||
        image.size() != pager_->page_size()) {
      return Status::Corruption("pager snapshot: truncated image");
    }
    scratch.assign(image);
    DOMINO_RETURN_IF_ERROR(pager_->WritePage(pgno, scratch.data()));
  }
  DOMINO_RETURN_IF_ERROR(pager_->Sync());
  DOMINO_RETURN_IF_ERROR(DecodeMetaBlob(meta_blob));
  return RebuildIndexFromIdTable();
}

Status NoteStore::RebuildIndexFromIdTable() {
  unid_index_.clear();
  live_count_ = 0;
  stub_count_ = 0;
  const size_t per_page = EntriesPerPage();
  for (size_t ti = 0; ti < id_table_pages_.size(); ++ti) {
    DOMINO_ASSIGN_OR_RETURN(pager::PageRef ref,
                            pool_->Pin(id_table_pages_[ti]));
    if (PageTypeOf(ref.data()) != pager::kPageIdTable) {
      return Status::Corruption("id-table page has wrong type");
    }
    for (size_t i = 0; i < per_page; ++i) {
      const char* p = ref.data() + kPageHeaderSize + i * kIdEntrySize;
      uint8_t flags = static_cast<uint8_t>(p[22]);
      if ((flags & kEntryUsed) == 0) continue;
      NoteId id = static_cast<NoteId>(ti * per_page + i + 1);
      Unid unid;
      unid.hi = LoadU64(p);
      unid.lo = LoadU64(p + 8);
      unid_index_[unid] = id;
      if (flags & kEntryDeleted) {
        ++stub_count_;
      } else {
        ++live_count_;
      }
      if (id >= next_id_) next_id_ = id + 1;
    }
  }
  return Status::Ok();
}

Status NoteStore::LoadLegacySnapshot(std::string_view data) {
  if (data.size() < sizeof(kSnapshotMagic) - 1 ||
      data.substr(0, sizeof(kSnapshotMagic) - 1) != kSnapshotMagic) {
    return Status::Corruption("snapshot: bad magic");
  }
  std::string_view input = data.substr(sizeof(kSnapshotMagic) - 1);
  DOMINO_RETURN_IF_ERROR(DatabaseInfo::DecodeFrom(&input, &info_));
  uint32_t next_id = 0;
  uint64_t count = 0;
  if (!GetFixed32(&input, &next_id) || !GetVarint64(&input, &count)) {
    return Status::Corruption("snapshot: truncated header");
  }
  next_id_ = next_id;
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view encoded;
    if (!GetLengthPrefixed(&input, &encoded)) {
      return Status::Corruption("snapshot: truncated note");
    }
    Note note;
    DOMINO_RETURN_IF_ERROR(Note::DecodeFromString(encoded, &note));
    DOMINO_RETURN_IF_ERROR(ApplyNote(std::move(note)).status());
  }
  return Status::Ok();
}

// -- Id-table access -------------------------------------------------------

size_t NoteStore::EntriesPerPage() const {
  return (pager_->page_size() - kPageHeaderSize) / kIdEntrySize;
}

Result<pager::PageRef> NoteStore::IdTablePageFor(NoteId id,
                                                 size_t* slot_in_page) const {
  const size_t per_page = EntriesPerPage();
  const size_t index = static_cast<size_t>(id - 1);
  const size_t ti = index / per_page;
  *slot_in_page = index % per_page;
  if (ti >= id_table_pages_.size()) {
    return Status::NotFound("note id beyond id table");
  }
  return pool_->Pin(id_table_pages_[ti]);
}

Status NoteStore::EnsureIdCapacity(NoteId id) {
  const size_t per_page = EntriesPerPage();
  const size_t ti = static_cast<size_t>(id - 1) / per_page;
  while (id_table_pages_.size() <= ti) {
    uint32_t pgno = pager_->Allocate();
    pool_->PinNew(pgno, pager::kPageIdTable);
    id_table_pages_.push_back(pgno);
  }
  return Status::Ok();
}

Result<NoteStore::IdEntry> NoteStore::ReadEntry(NoteId id) const {
  if (id == kInvalidNoteId) return IdEntry{};
  size_t slot = 0;
  auto ref_or = IdTablePageFor(id, &slot);
  if (!ref_or.ok()) {
    if (ref_or.status().IsNotFound()) return IdEntry{};
    return ref_or.status();
  }
  const char* p = ref_or->data() + kPageHeaderSize + slot * kIdEntrySize;
  IdEntry entry;
  entry.unid.hi = LoadU64(p);
  entry.unid.lo = LoadU64(p + 8);
  entry.page = LoadU32(p + 16);
  entry.slot = LoadU16(p + 20);
  entry.flags = static_cast<uint8_t>(p[22]);
  entry.seq_time = static_cast<Micros>(LoadU64(p + 24));
  return entry;
}

Status NoteStore::WriteEntry(NoteId id, const IdEntry& entry) {
  DOMINO_RETURN_IF_ERROR(EnsureIdCapacity(id));
  size_t slot = 0;
  DOMINO_ASSIGN_OR_RETURN(pager::PageRef ref, IdTablePageFor(id, &slot));
  char* p = ref.data() + kPageHeaderSize + slot * kIdEntrySize;
  StoreU64(p, entry.unid.hi);
  StoreU64(p + 8, entry.unid.lo);
  StoreU32(p + 16, entry.page);
  StoreU16(p + 20, entry.slot);
  p[22] = static_cast<char>(entry.flags);
  p[23] = 0;
  StoreU64(p + 24, static_cast<uint64_t>(entry.seq_time));
  ref.MarkDirty();
  return Status::Ok();
}

// -- Note placement --------------------------------------------------------

Status NoteStore::PlaceSlot(std::string_view encoded, uint32_t* page,
                            uint16_t* slot) {
  const uint32_t page_size = pager_->page_size();
  pager::PageRef ref;
  if (fill_page_ != kInvalidPage) {
    DOMINO_ASSIGN_OR_RETURN(ref, pool_->Pin(fill_page_));
    const uint16_t nslots = PageNSlots(ref.data());
    const uint16_t free_off = PageFreeOff(ref.data());
    const size_t needed = encoded.size() + kSlotOverhead;
    if (free_off + needed > DirOffset(page_size, nslots)) {
      ref.Release();  // full — start a fresh fill page
      fill_page_ = kInvalidPage;
    }
  }
  if (fill_page_ == kInvalidPage) {
    uint32_t pgno = pager_->Allocate();
    ref = pool_->PinNew(pgno, pager::kPageBucket);
    StoreU16(ref.data() + pager::kPageFreeOffOffset,
             static_cast<uint16_t>(kPageHeaderSize));
    fill_page_ = pgno;
  }
  char* data = ref.data();
  const uint16_t nslots = PageNSlots(data);
  const uint16_t free_off = PageFreeOff(data);
  StoreU16(data + free_off, static_cast<uint16_t>(encoded.size()));
  std::memcpy(data + free_off + 2, encoded.data(), encoded.size());
  StoreU16(data + DirOffset(page_size, nslots), free_off);
  StoreU16(data + pager::kPageNSlotsOffset, static_cast<uint16_t>(nslots + 1));
  StoreU16(data + pager::kPageFreeOffOffset,
           static_cast<uint16_t>(free_off + 2 + encoded.size()));
  ref.MarkDirty();
  *page = fill_page_;
  *slot = nslots;
  return Status::Ok();
}

Status NoteStore::PlaceNote(std::string_view encoded, IdEntry* entry) {
  const uint32_t page_size = pager_->page_size();
  const size_t inline_max = page_size - kPageHeaderSize - kSlotOverhead;
  if (encoded.size() <= inline_max) {
    entry->flags &= static_cast<uint8_t>(~kEntryOverflow);
    return PlaceSlot(encoded, &entry->page, &entry->slot);
  }
  // Oversized note: spill into an overflow chain, one chunk per page.
  const size_t chunk_max = page_size - kPageHeaderSize;
  uint32_t first = kInvalidPage;
  pager::PageRef prev;
  size_t off = 0;
  while (off < encoded.size()) {
    const size_t chunk = std::min(chunk_max, encoded.size() - off);
    uint32_t pgno = pager_->Allocate();
    pager::PageRef ref = pool_->PinNew(pgno, pager::kPageOverflow);
    StoreU16(ref.data() + pager::kPageFreeOffOffset,
             static_cast<uint16_t>(chunk));
    std::memcpy(ref.data() + kPageHeaderSize, encoded.data() + off, chunk);
    ref.MarkDirty();
    if (first == kInvalidPage) {
      first = pgno;
    } else {
      StoreU32(prev.data() + pager::kPageNextOffset, pgno);
      prev.MarkDirty();
    }
    prev = std::move(ref);
    off += chunk;
  }
  entry->page = first;
  entry->slot = 0;
  entry->flags |= kEntryOverflow;
  return Status::Ok();
}

Status NoteStore::KillLocation(const IdEntry& entry) {
  if (entry.flags & kEntryOverflow) {
    uint32_t pgno = entry.page;
    while (pgno != kInvalidPage) {
      uint32_t next = kInvalidPage;
      {
        DOMINO_ASSIGN_OR_RETURN(pager::PageRef ref, pool_->Pin(pgno));
        if (PageTypeOf(ref.data()) != pager::kPageOverflow) {
          return Status::Corruption("overflow chain hits non-overflow page");
        }
        next = PageNext(ref.data());
      }
      pool_->Discard(pgno);
      pager_->Free(pgno);
      ctr_pages_freed_inline_->Add();
      pgno = next;
    }
    return Status::Ok();
  }
  bool whole_dead = true;
  {
    DOMINO_ASSIGN_OR_RETURN(pager::PageRef ref, pool_->Pin(entry.page));
    char* data = ref.data();
    const uint32_t page_size = pager_->page_size();
    const uint16_t nslots = PageNSlots(data);
    if (PageTypeOf(data) != pager::kPageBucket || entry.slot >= nslots) {
      return Status::Corruption("bad slot reference in id table");
    }
    const size_t dir = DirOffset(page_size, entry.slot);
    const uint16_t off = LoadU16(data + dir);
    if (off == kDeadSlot) {
      return Status::Corruption("double kill of bucket slot");
    }
    const uint16_t len = LoadU16(data + off);
    StoreU16(data + dir, kDeadSlot);
    ref.MarkDirty();
    dead_bytes_[entry.page] += len + kSlotOverhead;
    dead_total_ += len + kSlotOverhead;
    for (uint16_t i = 0; i < nslots && whole_dead; ++i) {
      if (LoadU16(data + DirOffset(page_size, i)) != kDeadSlot) {
        whole_dead = false;
      }
    }
  }
  if (whole_dead) {
    // Last live slot died: reclaim the page without waiting for COMPACT.
    dead_total_ -= dead_bytes_[entry.page];
    dead_bytes_.erase(entry.page);
    pool_->Discard(entry.page);
    pager_->Free(entry.page);
    if (fill_page_ == entry.page) fill_page_ = kInvalidPage;
    ctr_pages_freed_inline_->Add();
  }
  gauge_dead_bytes_->Set(static_cast<int64_t>(dead_total_));
  return Status::Ok();
}

Result<Note> NoteStore::ReadNoteAt(const IdEntry& entry) const {
  const uint32_t page_size = pager_->page_size();
  std::string buffer;
  std::string_view encoded;
  if (entry.flags & kEntryOverflow) {
    uint32_t pgno = entry.page;
    while (pgno != kInvalidPage) {
      DOMINO_ASSIGN_OR_RETURN(pager::PageRef ref, pool_->Pin(pgno));
      if (PageTypeOf(ref.data()) != pager::kPageOverflow) {
        return Status::Corruption("overflow chain hits non-overflow page");
      }
      const uint16_t chunk = PageFreeOff(ref.data());
      if (chunk > page_size - kPageHeaderSize ||
          buffer.size() + chunk > (1ull << 30)) {
        return Status::Corruption("overflow chunk out of bounds");
      }
      buffer.append(ref.data() + kPageHeaderSize, chunk);
      pgno = PageNext(ref.data());
    }
    encoded = buffer;
    Note note;
    DOMINO_RETURN_IF_ERROR(Note::DecodeFromString(encoded, &note));
    return note;
  }
  DOMINO_ASSIGN_OR_RETURN(pager::PageRef ref, pool_->Pin(entry.page));
  const char* data = ref.data();
  const uint16_t nslots = PageNSlots(data);
  if (PageTypeOf(data) != pager::kPageBucket || entry.slot >= nslots) {
    return Status::Corruption("bad slot reference in id table");
  }
  const uint16_t off = LoadU16(data + DirOffset(page_size, entry.slot));
  if (off == kDeadSlot || off < kPageHeaderSize || off + 2 > page_size) {
    return Status::Corruption("dead or out-of-bounds slot");
  }
  const uint16_t len = LoadU16(data + off);
  if (off + 2 + len > page_size) {
    return Status::Corruption("slot overruns page");
  }
  Note note;
  DOMINO_RETURN_IF_ERROR(
      Note::DecodeFromString(std::string_view(data + off + 2, len), &note));
  return note;
}

// -- Reads -----------------------------------------------------------------

Result<Note> NoteStore::GetCore(NoteId id) const {
  DOMINO_ASSIGN_OR_RETURN(IdEntry entry, ReadEntry(id));
  if ((entry.flags & kEntryUsed) == 0) {
    return Status::NotFound("note id " + std::to_string(id));
  }
  return ReadNoteAt(entry);
}

NoteHandle NoteStore::FindCore(NoteId id) const {
  auto note = GetCore(id);
  if (!note.ok()) return nullptr;
  return std::make_shared<const Note>(std::move(*note));
}

Result<Note> NoteStore::Get(NoteId id) const {
  ReaderLock lock(&mu_);
  return GetCore(id);
}

Result<Note> NoteStore::GetByUnid(const Unid& unid) const {
  ReaderLock lock(&mu_);
  auto it = unid_index_.find(unid);
  if (it == unid_index_.end()) {
    return Status::NotFound("unid " + unid.ToString());
  }
  return GetCore(it->second);
}

bool NoteStore::Contains(NoteId id) const {
  ReaderLock lock(&mu_);
  auto entry = ReadEntry(id);
  return entry.ok() && (entry->flags & kEntryUsed) != 0;
}

bool NoteStore::ContainsUnid(const Unid& unid) const {
  ReaderLock lock(&mu_);
  return unid_index_.count(unid) != 0;
}

NoteHandle NoteStore::Find(NoteId id) const {
  ReaderLock lock(&mu_);
  return FindCore(id);
}

NoteHandle NoteStore::FindByUnid(const Unid& unid) const {
  ReaderLock lock(&mu_);
  auto it = unid_index_.find(unid);
  return it == unid_index_.end() ? nullptr : FindCore(it->second);
}

void NoteStore::ForEach(const std::function<void(const Note&)>& fn) const {
  const size_t per_page = EntriesPerPage();
  size_t table_pages = 0;
  {
    ReaderLock lock(&mu_);
    table_pages = id_table_pages_.size();
  }
  for (size_t ti = 0; ti < table_pages; ++ti) {
    // Entry decode AND note reads happen under one shared hold (an entry
    // read without its note would go stale if a writer moved the note in
    // between); `fn` then runs with no lock held, so callbacks may
    // re-enter store reads without self-deadlocking on the shared lock.
    std::vector<Note> batch;
    {
      ReaderLock lock(&mu_);
      if (ti >= id_table_pages_.size()) break;
      std::vector<IdEntry> used;
      {
        auto ref_or = pool_->Pin(id_table_pages_[ti]);
        if (!ref_or.ok()) continue;
        for (size_t i = 0; i < per_page; ++i) {
          const char* p = ref_or->data() + kPageHeaderSize + i * kIdEntrySize;
          if ((static_cast<uint8_t>(p[22]) & kEntryUsed) == 0) continue;
          IdEntry entry;
          entry.unid.hi = LoadU64(p);
          entry.unid.lo = LoadU64(p + 8);
          entry.page = LoadU32(p + 16);
          entry.slot = LoadU16(p + 20);
          entry.flags = static_cast<uint8_t>(p[22]);
          entry.seq_time = static_cast<Micros>(LoadU64(p + 24));
          used.push_back(entry);
        }
      }
      batch.reserve(used.size());
      for (const IdEntry& entry : used) {
        auto note = ReadNoteAt(entry);
        if (note.ok()) batch.push_back(std::move(*note));
      }
    }
    for (const Note& note : batch) fn(note);
  }
}

// -- Apply (shared by live commits and recovery replay) --------------------

Result<std::pair<bool, bool>> NoteStore::ApplyNote(Note&& note) {
  const NoteId id = note.id();
  DOMINO_ASSIGN_OR_RETURN(IdEntry old_entry, ReadEntry(id));
  const bool existed = (old_entry.flags & kEntryUsed) != 0;
  const bool was_live = existed && (old_entry.flags & kEntryDeleted) == 0;
  if (existed) {
    DOMINO_RETURN_IF_ERROR(KillLocation(old_entry));
    if (!(old_entry.unid == note.unid())) {
      unid_index_.erase(old_entry.unid);
    }
    if (old_entry.flags & kEntryDeleted) {
      --stub_count_;
    } else {
      --live_count_;
    }
  }
  std::string encoded = note.EncodeToString();
  IdEntry entry;
  entry.unid = note.unid();
  entry.flags = kEntryUsed;
  if (note.deleted()) entry.flags |= kEntryDeleted;
  entry.seq_time = note.sequence_time();
  DOMINO_RETURN_IF_ERROR(PlaceNote(encoded, &entry));
  DOMINO_RETURN_IF_ERROR(WriteEntry(id, entry));
  unid_index_[note.unid()] = id;
  if (note.deleted()) {
    ++stub_count_;
  } else {
    ++live_count_;
  }
  if (id >= next_id_) next_id_ = id + 1;
  return std::make_pair(existed, was_live);
}

Status NoteStore::ApplyErase(NoteId id, const IdEntry& entry) {
  DOMINO_RETURN_IF_ERROR(KillLocation(entry));
  DOMINO_RETURN_IF_ERROR(WriteEntry(id, IdEntry{}));
  unid_index_.erase(entry.unid);
  if (entry.flags & kEntryDeleted) {
    --stub_count_;
  } else {
    --live_count_;
  }
  return Status::Ok();
}

Status NoteStore::ApplyBatchPayload(std::string_view payload,
                                    bool from_recovery) {
  (void)from_recovery;
  std::string_view input = payload;
  uint64_t count = 0;
  if (!GetVarint64(&input, &count)) {
    return Status::Corruption("batch: bad count");
  }
  for (uint64_t i = 0; i < count; ++i) {
    if (input.empty()) return Status::Corruption("batch: truncated op");
    uint8_t op = static_cast<uint8_t>(input.front());
    input.remove_prefix(1);
    switch (op) {
      case kOpPut: {
        std::string_view encoded;
        if (!GetLengthPrefixed(&input, &encoded)) {
          return Status::Corruption("batch: truncated put");
        }
        Note note;
        DOMINO_RETURN_IF_ERROR(Note::DecodeFromString(encoded, &note));
        DOMINO_RETURN_IF_ERROR(ApplyNote(std::move(note)).status());
        break;
      }
      case kOpErase: {
        uint32_t id = 0;
        if (!GetFixed32(&input, &id)) {
          return Status::Corruption("batch: truncated erase");
        }
        DOMINO_ASSIGN_OR_RETURN(IdEntry entry, ReadEntry(id));
        if (entry.flags & kEntryUsed) {
          DOMINO_RETURN_IF_ERROR(ApplyErase(id, entry));
        }
        break;
      }
      case kOpInfo: {
        std::string_view encoded;
        if (!GetLengthPrefixed(&input, &encoded)) {
          return Status::Corruption("batch: truncated info");
        }
        std::string_view cursor = encoded;
        DOMINO_RETURN_IF_ERROR(DatabaseInfo::DecodeFrom(&cursor, &info_));
        break;
      }
      default:
        return Status::Corruption("batch: unknown op");
    }
  }
  return Status::Ok();
}

Status NoteStore::CommitPayload(const std::string& payload) {
  // Deliberately NOT under mu_: the append (and its fsync, under strict
  // sync modes) must not block concurrent shared-lock readers. Writers
  // are serialized by the owning Database, so two commits never race.
  auto start = std::chrono::steady_clock::now();
  uint64_t wal_bytes = 0;
  if (uses_shared_log()) {
    DOMINO_RETURN_IF_ERROR(options_.shared_log->Commit(
        options_.shared_stream, wal::RecordType::kData, payload));
    wal_bytes = shared_bytes_since_checkpoint_.fetch_add(
                    payload.size(), std::memory_order_relaxed) +
                payload.size();
  } else {
    DOMINO_RETURN_IF_ERROR(
        wal_->AppendRecord(wal::RecordType::kData, payload));
    wal_bytes = wal_->bytes_written();
  }
  hist_commit_micros_->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  {
    MutexLock stats_lock(&stats_mu_);
    stats_.wal_bytes_written = wal_bytes;
    stats_.wal_records_written++;
  }
  ctr_wal_records_->Add();
  ctr_wal_bytes_->Add(payload.size());
  return Status::Ok();
}

Status NoteStore::MaybeCheckpoint() {
  if (options_.checkpoint_threshold_bytes == 0) return Status::Ok();
  const uint64_t obligation =
      uses_shared_log()
          ? shared_bytes_since_checkpoint_.load(std::memory_order_relaxed)
          : (wal_ != nullptr ? wal_->bytes_written() : 0);
  if (obligation <= options_.checkpoint_threshold_bytes) return Status::Ok();
  return Checkpoint();
}

// -- Writes ----------------------------------------------------------------

Status NoteStore::Put(Note* note) {
  if (note->id() == kInvalidNoteId) note->set_id(AllocateId());
  if (note->unid().IsNull()) {
    return Status::InvalidArgument("note has null UNID; stamp it first");
  }
  std::string payload;
  PutVarint64(&payload, 1);
  payload.push_back(static_cast<char>(kOpPut));
  std::string encoded = note->EncodeToString();
  PutLengthPrefixed(&payload, encoded);
  DOMINO_RETURN_IF_ERROR(CommitPayload(payload));
  bool existed = false;
  bool was_live = false;
  {
    WriterLock lock(&mu_);
    DOMINO_ASSIGN_OR_RETURN(auto outcome, ApplyNote(Note(*note)));
    existed = outcome.first;
    was_live = outcome.second;
  }
  CountPut(existed, was_live, note->deleted());
  return Status::Ok();
}

void NoteStore::CountPut(bool existed, bool was_live, bool now_deleted) {
  if (now_deleted) {
    ctr_docs_deleted_->Add();
    if (was_live) gauge_notes_->Add(-1);
  } else if (!existed) {
    ctr_docs_added_->Add();
    gauge_notes_->Add(1);
  } else {
    ctr_docs_updated_->Add();
    // A live note replacing a stub (replication resurrect) re-enters the
    // live population.
    if (!was_live) gauge_notes_->Add(1);
  }
}

Status NoteStore::PutBatch(std::vector<Note>* batch) {
  if (batch->empty()) return Status::Ok();
  std::string payload;
  PutVarint64(&payload, batch->size());
  for (Note& note : *batch) {
    if (note.id() == kInvalidNoteId) note.set_id(AllocateId());
    if (note.unid().IsNull()) {
      return Status::InvalidArgument("note has null UNID; stamp it first");
    }
    payload.push_back(static_cast<char>(kOpPut));
    std::string encoded = note.EncodeToString();
    PutLengthPrefixed(&payload, encoded);
  }
  DOMINO_RETURN_IF_ERROR(CommitPayload(payload));
  WriterLock lock(&mu_);
  for (const Note& note : *batch) {
    DOMINO_ASSIGN_OR_RETURN(auto outcome, ApplyNote(Note(note)));
    CountPut(outcome.first, outcome.second, note.deleted());
  }
  return Status::Ok();
}

Status NoteStore::Erase(NoteId id) {
  {
    ReaderLock lock(&mu_);
    DOMINO_ASSIGN_OR_RETURN(IdEntry entry, ReadEntry(id));
    if ((entry.flags & kEntryUsed) == 0) {
      return Status::NotFound("note id " + std::to_string(id));
    }
  }
  std::string payload;
  PutVarint64(&payload, 1);
  payload.push_back(static_cast<char>(kOpErase));
  PutFixed32(&payload, id);
  DOMINO_RETURN_IF_ERROR(CommitPayload(payload));
  WriterLock lock(&mu_);
  // Re-read under the exclusive hold; writers are serialized externally,
  // so the entry cannot have changed between the check and here.
  DOMINO_ASSIGN_OR_RETURN(IdEntry entry, ReadEntry(id));
  if ((entry.flags & kEntryUsed) == 0) return Status::Ok();
  ctr_docs_erased_->Add();
  if ((entry.flags & kEntryDeleted) == 0) gauge_notes_->Add(-1);
  return ApplyErase(id, entry);
}

Result<size_t> NoteStore::PurgeStubs(Micros now) {
  // Stub eligibility lives entirely in the id table (deleted flag +
  // sequence time), so the purge scan never faults bucket pages in.
  std::vector<NoteId> victims;
  {
    ReaderLock lock(&mu_);
    const Micros cutoff = now - info_.purge_interval;
    const size_t per_page = EntriesPerPage();
    for (size_t ti = 0; ti < id_table_pages_.size(); ++ti) {
      DOMINO_ASSIGN_OR_RETURN(pager::PageRef ref,
                              pool_->Pin(id_table_pages_[ti]));
      for (size_t i = 0; i < per_page; ++i) {
        const char* p = ref.data() + kPageHeaderSize + i * kIdEntrySize;
        const uint8_t flags = static_cast<uint8_t>(p[22]);
        if ((flags & kEntryUsed) == 0 || (flags & kEntryDeleted) == 0) {
          continue;
        }
        if (static_cast<Micros>(LoadU64(p + 24)) < cutoff) {
          victims.push_back(static_cast<NoteId>(ti * per_page + i + 1));
        }
      }
    }
  }
  for (NoteId id : victims) {
    DOMINO_RETURN_IF_ERROR(Erase(id));
  }
  ctr_stubs_purged_->Add(victims.size());
  return victims.size();
}

Status NoteStore::UpdateInfo(const DatabaseInfo& info) {
  std::string payload;
  PutVarint64(&payload, 1);
  payload.push_back(static_cast<char>(kOpInfo));
  std::string encoded;
  info.EncodeTo(&encoded);
  PutLengthPrefixed(&payload, encoded);
  DOMINO_RETURN_IF_ERROR(CommitPayload(payload));
  WriterLock lock(&mu_);
  info_ = info;
  return Status::Ok();
}

DatabaseInfo NoteStore::info() const {
  ReaderLock lock(&mu_);
  return info_;
}

StoreStats NoteStore::stats() const {
  MutexLock lock(&stats_mu_);
  return stats_;
}

CompactStats NoteStore::compact_stats() const {
  ReaderLock lock(&mu_);
  return compact_stats_;
}

// -- Checkpoint ------------------------------------------------------------

Status NoteStore::Fault(std::string_view point) {
  if (options_.checkpoint_fault) return options_.checkpoint_fault(point);
  return Status::Ok();
}

Status NoteStore::Checkpoint() {
  // Exclusive for the whole protocol, fsyncs included: the page images,
  // meta blob and WAL reset must describe one consistent state. Rare and
  // threshold-driven, so readers stalling behind it is acceptable.
  WriterLock lock(&mu_);
  // Drop free pages at the tail of the address space from the geometry
  // now (so the meta we log is already trimmed); the file itself is only
  // truncated after the checkpoint commits — those pages are free in the
  // new state and the old state is gone, so the truncation harms nothing.
  pager_->TrimFreeTail();
  std::string snapshot = EncodePagerSnapshot();

  // 1. One atomic record carrying meta + every dirty page image. Once it
  //    is durable, any torn in-place write below is repairable.
  if (uses_shared_log()) {
    DOMINO_RETURN_IF_ERROR(options_.shared_log->Commit(
        options_.shared_stream, wal::RecordType::kPagerSnapshot, snapshot));
    DOMINO_RETURN_IF_ERROR(options_.shared_log->SyncAll());
  } else {
    DOMINO_RETURN_IF_ERROR(
        wal_->AppendRecord(wal::RecordType::kPagerSnapshot, snapshot));
    DOMINO_RETURN_IF_ERROR(wal_->Sync());
  }
  DOMINO_RETURN_IF_ERROR(Fault("pager:after_log"));

  // 2. Write the dirty pages in place.
  const size_t total_dirty = pool_->dirty_count();
  size_t written = 0;
  DOMINO_RETURN_IF_ERROR(
      pool_->ForEachDirty([&](uint32_t pgno, char* data) -> Status {
        DOMINO_RETURN_IF_ERROR(pager_->WritePage(pgno, data));
        ++written;
        if (written == (total_dirty + 1) / 2) {
          DOMINO_RETURN_IF_ERROR(Fault("pager:mid_pages"));
        }
        return Status::Ok();
      }));
  DOMINO_RETURN_IF_ERROR(pager_->Sync());
  DOMINO_RETURN_IF_ERROR(Fault("pager:after_pages"));

  // 3. Atomically publish the new geometry. Layout: magic + blob +
  //    masked CRC over the blob.
  std::string blob = EncodeMetaBlob();
  std::string meta(kMetaMagic);
  meta.append(blob);
  PutFixed32(&meta, crc32c::Mask(crc32c::Value(blob)));
  DOMINO_RETURN_IF_ERROR(WriteFileAtomic(MetaPath(), meta));
  DOMINO_RETURN_IF_ERROR(Fault("pager:after_meta"));
  DOMINO_RETURN_IF_ERROR(RemoveFileIfExists(SnapshotPath()));

  // 4. Truncate the WAL obligation.
  if (uses_shared_log()) {
    // Marker first (recovery skips everything at or before it), then
    // advance this stream's low-water mark so segments every stream has
    // checkpointed past can be physically dropped.
    DOMINO_RETURN_IF_ERROR(options_.shared_log->Commit(
        options_.shared_stream, wal::RecordType::kCheckpoint, ""));
    DOMINO_RETURN_IF_ERROR(
        options_.shared_log->AdvanceCheckpoint(options_.shared_stream));
    shared_bytes_since_checkpoint_.store(0, std::memory_order_relaxed);
  } else {
    // Start a fresh WAL; the page file + meta now carry all state.
    wal_.reset();
    DOMINO_RETURN_IF_ERROR(RemoveFileIfExists(WalPath()));
    DOMINO_ASSIGN_OR_RETURN(wal_,
                            wal::LogWriter::Open(WalPath(),
                                                 options_.sync_mode,
                                                 registry_));
  }
  pool_->MarkAllClean();
  DOMINO_RETURN_IF_ERROR(pager_->TruncateToWatermark());
  {
    MutexLock stats_lock(&stats_mu_);
    stats_.checkpoints++;
  }
  ctr_checkpoints_->Add();
  return Status::Ok();
}

// -- COMPACT ---------------------------------------------------------------

Result<size_t> NoteStore::CompactStep(size_t max_pages) {
  WriterLock lock(&mu_);
  std::vector<uint32_t> candidates;
  for (const auto& [pg, bytes] : dead_bytes_) {
    if (pg == fill_page_) continue;
    candidates.push_back(pg);
    if (candidates.size() >= max_pages) break;
  }
  size_t reclaimed = 0;
  uint64_t bytes_reclaimed = 0;
  uint64_t moved = 0;
  for (uint32_t pg : candidates) {
    const uint64_t dead = dead_bytes_[pg];
    // Copy out the live slots, then free the husk before re-placing so
    // the allocator may immediately reuse the page. In-memory only —
    // durability comes from the next checkpoint, and a crash before it
    // simply replays the WAL onto the pre-compaction page state.
    std::vector<std::string> live;
    {
      DOMINO_ASSIGN_OR_RETURN(pager::PageRef ref, pool_->Pin(pg));
      const char* data = ref.data();
      if (PageTypeOf(data) != pager::kPageBucket) {
        return Status::Corruption("compact candidate is not a bucket page");
      }
      const uint32_t page_size = pager_->page_size();
      const uint16_t nslots = PageNSlots(data);
      for (uint16_t i = 0; i < nslots; ++i) {
        const uint16_t off = LoadU16(data + DirOffset(page_size, i));
        if (off == kDeadSlot) continue;
        const uint16_t len = LoadU16(data + off);
        live.emplace_back(data + off + 2, len);
      }
    }
    dead_total_ -= dead;
    dead_bytes_.erase(pg);
    pool_->Discard(pg);
    pager_->Free(pg);
    for (const std::string& encoded : live) {
      // An encoded note starts with its fixed32 id.
      const NoteId id = LoadU32(encoded.data());
      DOMINO_ASSIGN_OR_RETURN(IdEntry entry, ReadEntry(id));
      if ((entry.flags & kEntryUsed) == 0 || entry.page != pg) {
        return Status::Corruption("compact: id table disagrees with slot");
      }
      DOMINO_RETURN_IF_ERROR(PlaceSlot(encoded, &entry.page, &entry.slot));
      DOMINO_RETURN_IF_ERROR(WriteEntry(id, entry));
      ++moved;
    }
    ++reclaimed;
    bytes_reclaimed += dead;
  }
  if (reclaimed > 0) {
    compact_stats_.runs++;
    compact_stats_.pages_reclaimed += reclaimed;
    compact_stats_.bytes_reclaimed += bytes_reclaimed;
    compact_stats_.notes_moved += moved;
    ctr_compact_runs_->Add();
    ctr_compact_pages_->Add(reclaimed);
    ctr_compact_bytes_->Add(bytes_reclaimed);
    ctr_compact_moved_->Add(moved);
    gauge_dead_bytes_->Set(static_cast<int64_t>(dead_total_));
  }
  return reclaimed;
}

Status NoteStore::MaybeCompact() {
  if (options_.compact_threshold_bytes == 0) return Status::Ok();
  if (dead_bytes() <= options_.compact_threshold_bytes) return Status::Ok();
  return CompactStep(16).status();
}

uint64_t NoteStore::dead_bytes() const {
  ReaderLock lock(&mu_);
  return dead_total_;
}

uint64_t NoteStore::wal_size_bytes() const {
  if (uses_shared_log()) {
    return shared_bytes_since_checkpoint_.load(std::memory_order_relaxed);
  }
  auto size = FileSize(WalPath());
  return size.ok() ? *size : 0;
}

uint64_t NoteStore::pages_size_bytes() const {
  auto size = pager_->FileSize();
  return size.ok() ? *size : 0;
}

}  // namespace dominodb
