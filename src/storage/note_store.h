#ifndef DOMINODB_STORAGE_NOTE_STORE_H_
#define DOMINODB_STORAGE_NOTE_STORE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/clock.h"
#include "base/result.h"
#include "base/status.h"
#include "model/note.h"
#include "model/unid.h"
#include "stats/stats.h"
#include "wal/log_writer.h"
#include "wal/shared_log.h"

namespace dominodb {

/// Database-wide metadata persisted with the store. The replica id is the
/// key fact: two databases replicate iff their replica ids match (the NSF
/// "replica ID" of Notes).
struct DatabaseInfo {
  Unid replica_id;
  std::string title;
  /// Deletion stubs older than this are eligible for purge. Notes default
  /// is 90 days; experiments shrink it to provoke the resurrection anomaly.
  Micros purge_interval = 90ll * 24 * 3600 * 1'000'000;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(std::string_view* input, DatabaseInfo* out);
};

struct StoreOptions {
  /// Durability policy of the private per-database log. Ignored when
  /// `shared_log` is set — the SharedLog's own sync mode governs then.
  wal::SyncMode sync_mode = wal::SyncMode::kNone;
  /// MaybeCheckpoint() snapshots once the WAL obligation exceeds this
  /// size (0 disables). Checkpointing is never triggered from inside the
  /// commit path; the owning Database (or an idle hook) calls
  /// MaybeCheckpoint explicitly.
  uint64_t checkpoint_threshold_bytes = 16ull << 20;
  /// When set, this store logs through the server-wide shared transaction
  /// log instead of a private `notes.wal`: commits are tagged with
  /// `shared_stream` (obtained from SharedLog::RegisterStream) and ride
  /// the group-commit protocol. The SharedLog must outlive the store.
  wal::SharedLog* shared_log = nullptr;
  uint32_t shared_stream = 0;
  /// Registry receiving the `Database.*` and `WAL.*` stats of this store;
  /// null → the process-wide StatRegistry::Global().
  stats::StatRegistry* stats = nullptr;
};

struct StoreStats {
  uint64_t wal_records_written = 0;
  uint64_t wal_bytes_written = 0;
  uint64_t checkpoints = 0;
  uint64_t recovered_records = 0;
  bool recovered_torn_tail = false;
};

/// The NSF-equivalent: the authoritative per-database note table with
/// write-ahead-logged durability, a UNID index, deletion stubs and stub
/// purging. Crash recovery = load last checkpoint snapshot + replay WAL;
/// a torn WAL tail is ignored (committed-prefix semantics).
///
/// Not thread-safe; the owning Database serializes access (Notes serializes
/// note updates per database too).
class NoteStore {
 public:
  /// Opens (or creates) a store in directory `dir`. `default_info` seeds
  /// the metadata when creating; an existing store keeps its own.
  static Result<std::unique_ptr<NoteStore>> Open(
      const std::string& dir, const StoreOptions& options,
      const DatabaseInfo& default_info);

  ~NoteStore() = default;
  NoteStore(const NoteStore&) = delete;
  NoteStore& operator=(const NoteStore&) = delete;

  // -- Reads ------------------------------------------------------------
  /// Fetches by local note id (stubs included).
  Result<Note> Get(NoteId id) const;
  /// Fetches by UNID (stubs included).
  Result<Note> GetByUnid(const Unid& unid) const;
  bool Contains(NoteId id) const { return notes_.count(id) != 0; }
  bool ContainsUnid(const Unid& unid) const {
    return unid_index_.count(unid) != 0;
  }

  /// Borrowed pointer to the stored note (stubs included); nullptr when
  /// absent. Invalidated by the next write to the same id.
  const Note* FindPtr(NoteId id) const;
  const Note* FindPtrByUnid(const Unid& unid) const;

  /// Visits every note (including deletion stubs) in note-id order.
  void ForEach(const std::function<void(const Note&)>& fn) const;

  size_t note_count() const { return notes_.size() - stub_count_; }
  size_t stub_count() const { return stub_count_; }
  size_t total_count() const { return notes_.size(); }

  // -- Writes -----------------------------------------------------------
  /// Inserts or replaces `note` (keyed by note id; assigns the next id if
  /// the note has none). The caller is responsible for OID stamping.
  /// Updates the UNID index and stub accounting, and commits to the WAL.
  Status Put(Note* note);

  /// Atomically commits several notes in one WAL record.
  Status PutBatch(std::vector<Note>* notes);

  /// Physically removes a note or stub (used by stub purging only —
  /// logical deletion goes through Note::MakeStub + Put).
  Status Erase(NoteId id);

  /// Removes deletion stubs whose sequence time is older than
  /// `now - purge_interval`. Returns the number purged.
  Result<size_t> PurgeStubs(Micros now);

  /// Allocates a fresh local note id without writing anything.
  NoteId AllocateId() { return next_id_++; }

  // -- Metadata / maintenance -------------------------------------------
  const DatabaseInfo& info() const { return info_; }
  Status UpdateInfo(const DatabaseInfo& info);

  /// Writes a snapshot and truncates this store's WAL obligation: a
  /// private log is deleted outright; on a shared log the store commits a
  /// checkpoint marker and advances its low-water mark (segments below
  /// every stream's mark are physically dropped). Recovery cost then
  /// restarts from zero (E7 measures the tradeoff).
  Status Checkpoint();

  /// Checkpoints iff the WAL obligation exceeds
  /// `checkpoint_threshold_bytes`. Called by the owner at a convenient
  /// moment (post-maintenance, indexer idle) — never from inside the
  /// commit path, so a single Put cannot stall on a full snapshot.
  Status MaybeCheckpoint();

  const StoreStats& stats() const { return stats_; }
  uint64_t wal_size_bytes() const;

 private:
  NoteStore(std::string dir, StoreOptions options);

  std::string WalPath() const { return dir_ + "/notes.wal"; }
  std::string SnapshotPath() const { return dir_ + "/notes.snap"; }

  bool uses_shared_log() const { return options_.shared_log != nullptr; }

  Status Recover(const DatabaseInfo& default_info);
  /// Shared-log recovery: demultiplexes this store's stream and replays
  /// the records after its last checkpoint marker.
  Status RecoverFromSharedLog();
  Status LoadSnapshot(std::string_view data);
  std::string EncodeSnapshot() const;
  Status ApplyBatchPayload(std::string_view payload, bool from_recovery);
  Status CommitPayload(const std::string& payload);

  void IndexNote(const Note& note);
  void UnindexNote(const Note& note);
  /// Registry accounting for one committed Put.
  void CountPut(bool existed, bool was_live, bool now_deleted);

  std::string dir_;
  StoreOptions options_;
  DatabaseInfo info_;
  /// Private log; null when the store runs on the shared log.
  std::unique_ptr<wal::LogWriter> wal_;
  /// Shared-log mode: payload bytes committed since the last checkpoint
  /// (the store's WAL obligation, driving MaybeCheckpoint).
  uint64_t shared_bytes_since_checkpoint_ = 0;
  std::map<NoteId, Note> notes_;
  std::unordered_map<Unid, NoteId> unid_index_;
  NoteId next_id_ = 1;
  size_t stub_count_ = 0;
  StoreStats stats_;

  // Server-wide stat hooks (see StoreOptions::stats).
  stats::StatRegistry* registry_;
  stats::Counter* ctr_docs_added_;
  stats::Counter* ctr_docs_updated_;
  stats::Counter* ctr_docs_deleted_;
  stats::Counter* ctr_docs_erased_;
  stats::Counter* ctr_stubs_purged_;
  stats::Counter* ctr_checkpoints_;
  stats::Counter* ctr_wal_records_;
  stats::Counter* ctr_wal_bytes_;
  stats::Gauge* gauge_notes_;
  stats::Histogram* hist_commit_micros_;
};

}  // namespace dominodb

#endif  // DOMINODB_STORAGE_NOTE_STORE_H_
