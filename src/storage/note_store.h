#ifndef DOMINODB_STORAGE_NOTE_STORE_H_
#define DOMINODB_STORAGE_NOTE_STORE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/clock.h"
#include "base/result.h"
#include "base/shared_mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "model/note.h"
#include "model/unid.h"
#include "pager/buffer_pool.h"
#include "pager/pager.h"
#include "stats/stats.h"
#include "wal/log_writer.h"
#include "wal/shared_log.h"

namespace dominodb {

/// Database-wide metadata persisted with the store. The replica id is the
/// key fact: two databases replicate iff their replica ids match (the NSF
/// "replica ID" of Notes).
struct DatabaseInfo {
  Unid replica_id;
  std::string title;
  /// Deletion stubs older than this are eligible for purge. Notes default
  /// is 90 days; experiments shrink it to provoke the resurrection anomaly.
  Micros purge_interval = 90ll * 24 * 3600 * 1'000'000;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(std::string_view* input, DatabaseInfo* out);
};

struct StoreOptions {
  /// Durability policy of the private per-database log. Ignored when
  /// `shared_log` is set — the SharedLog's own sync mode governs then.
  wal::SyncMode sync_mode = wal::SyncMode::kNone;
  /// MaybeCheckpoint() snapshots once the WAL obligation exceeds this
  /// size (0 disables). Checkpointing is never triggered from inside the
  /// commit path; the owning Database (or an idle hook) calls
  /// MaybeCheckpoint explicitly.
  uint64_t checkpoint_threshold_bytes = 16ull << 20;
  /// When set, this store logs through the server-wide shared transaction
  /// log instead of a private `notes.wal`: commits are tagged with
  /// `shared_stream` (obtained from SharedLog::RegisterStream) and ride
  /// the group-commit protocol. The SharedLog must outlive the store.
  wal::SharedLog* shared_log = nullptr;
  uint32_t shared_stream = 0;
  /// Registry receiving the `Database.*` and `WAL.*` stats of this store;
  /// null → the process-wide StatRegistry::Global().
  stats::StatRegistry* stats = nullptr;

  // -- Paged storage ------------------------------------------------------
  /// Size of one page in `notes.pages` (power of two ≥ 64). Fixed at
  /// creation; an existing store's meta file is authoritative.
  uint32_t page_size = 4096;
  /// Buffer-pool capacity in pages. The working set this many pages can
  /// hold is the only part of the database that must fit in RAM.
  size_t cache_pages = 4096;
  /// MaybeCompact() runs an incremental COMPACT slice once the dead
  /// bytes left behind by updates, erases and purges exceed this volume
  /// (0 disables background compaction).
  uint64_t compact_threshold_bytes = 8ull << 20;
  /// Test-only crash injection: when set, invoked at named points inside
  /// Checkpoint() ("pager:after_log", "pager:mid_pages",
  /// "pager:after_pages", "pager:after_meta"); a non-OK return aborts the
  /// checkpoint there, leaving the partially-written on-disk state for
  /// recovery tests to chew on.
  std::function<Status(std::string_view)> checkpoint_fault;
};

struct StoreStats {
  uint64_t wal_records_written = 0;
  uint64_t wal_bytes_written = 0;
  uint64_t checkpoints = 0;
  uint64_t recovered_records = 0;
  bool recovered_torn_tail = false;
};

/// Space reclaimed by COMPACT (cumulative since open).
struct CompactStats {
  uint64_t runs = 0;
  uint64_t pages_reclaimed = 0;
  uint64_t bytes_reclaimed = 0;
  uint64_t notes_moved = 0;
};

/// The NSF-equivalent: the authoritative per-database note container.
///
/// Layout (PR 6): notes live in fixed-size pages in `notes.pages` —
/// slotted bucket pages for encoded notes (with overflow chains for
/// oversized ones) plus a paged note-ID table mapping note id →
/// {UNID, page, slot, flags, sequence time} — accessed through a
/// Pager + BufferPool, so databases larger than RAM serve from a bounded
/// working set. Durable geometry (page count, free list, id-table pages)
/// lives in `notes.meta`, written atomically at checkpoint.
///
/// Durability: logical ops commit to the WAL exactly as before (same
/// record format); page mutations stay in the buffer pool until
/// Checkpoint(), which first logs one atomic kPagerSnapshot record
/// containing every dirty page image, then writes the pages in place —
/// so a torn in-place write is always repaired from the logged images.
/// Crash recovery = adopt meta + replay WAL (images first if a snapshot
/// record is present, then the logical suffix).
///
/// Compaction: updates and erases leave dead slot bytes behind;
/// CompactStep() copies the live slots of the deadest pages into fresh
/// pages and frees the husks. The owning Database slices it under brief
/// writer locks so readers interleave (the online Domino COMPACT).
///
/// Threading: the store carries its own reader/writer lock. Public reads
/// take it shared; the apply step of every write, Checkpoint and
/// CompactStep take it exclusive — so MVCC readers can resolve notes
/// without any database-level lock while a writer commits. The WAL
/// append + fsync of a commit happens OUTSIDE the exclusive section
/// (writers are serialized by the owning Database, so commits cannot
/// race each other, and readers never touch the log). Checkpoint is the
/// one operation that holds the exclusive lock across disk syncs; it is
/// rare and threshold-driven.
class NoteStore {
 public:
  /// Opens (or creates) a store in directory `dir`. `default_info` seeds
  /// the metadata when creating; an existing store keeps its own.
  static Result<std::unique_ptr<NoteStore>> Open(
      const std::string& dir, const StoreOptions& options,
      const DatabaseInfo& default_info);

  ~NoteStore() = default;
  NoteStore(const NoteStore&) = delete;
  NoteStore& operator=(const NoteStore&) = delete;

  // -- Reads ------------------------------------------------------------
  /// Fetches by local note id (stubs included).
  Result<Note> Get(NoteId id) const;
  /// Fetches by UNID (stubs included).
  Result<Note> GetByUnid(const Unid& unid) const;
  bool Contains(NoteId id) const;
  bool ContainsUnid(const Unid& unid) const;

  /// Owning handle to the stored note (stubs included); null when absent
  /// or unreadable. The handle is a decoded copy, so it stays valid
  /// across evictions, compaction and later writes.
  NoteHandle Find(NoteId id) const;
  NoteHandle FindByUnid(const Unid& unid) const;

  /// Visits every note (including deletion stubs) in note-id order.
  /// The internal lock is held shared per id-table page, NOT across `fn`
  /// callbacks, so callbacks may freely re-enter store reads; notes
  /// committed concurrently with the scan may or may not be visited.
  void ForEach(const std::function<void(const Note&)>& fn) const;

  size_t note_count() const {
    return live_count_.load(std::memory_order_relaxed);
  }
  size_t stub_count() const {
    return stub_count_.load(std::memory_order_relaxed);
  }
  size_t total_count() const { return note_count() + stub_count(); }

  // -- Writes -----------------------------------------------------------
  /// Inserts or replaces `note` (keyed by note id; assigns the next id if
  /// the note has none). The caller is responsible for OID stamping.
  /// Updates the UNID index and stub accounting, and commits to the WAL.
  Status Put(Note* note);

  /// Atomically commits several notes in one WAL record.
  Status PutBatch(std::vector<Note>* notes);

  /// Physically removes a note or stub (used by stub purging only —
  /// logical deletion goes through Note::MakeStub + Put).
  Status Erase(NoteId id);

  /// Removes deletion stubs whose sequence time is older than
  /// `now - purge_interval`. Returns the number purged.
  Result<size_t> PurgeStubs(Micros now);

  /// Allocates a fresh local note id without writing anything.
  NoteId AllocateId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // -- Metadata / maintenance -------------------------------------------
  DatabaseInfo info() const;
  Status UpdateInfo(const DatabaseInfo& info);

  /// Makes all in-memory page state durable and truncates this store's
  /// WAL obligation. Protocol: (1) append one atomic kPagerSnapshot
  /// record — meta + every dirty page image — to the log and sync it;
  /// (2) write the dirty pages in place and sync the page file; (3)
  /// atomically replace `notes.meta`; (4) reset the private log (or
  /// commit a checkpoint marker and advance the shared-log low-water
  /// mark). A crash anywhere in between recovers: the logged images
  /// repair any torn in-place write.
  Status Checkpoint();

  /// Checkpoints iff the WAL obligation exceeds
  /// `checkpoint_threshold_bytes`. Called by the owner at a convenient
  /// moment (post-maintenance, indexer idle) — never from inside the
  /// commit path, so a single Put cannot stall on a full snapshot.
  Status MaybeCheckpoint();

  // -- COMPACT ----------------------------------------------------------
  /// One bounded compaction slice: rewrites up to `max_pages` of the
  /// bucket pages carrying dead bytes, moving their live notes into the
  /// current fill page and freeing the husks. Returns the number of
  /// pages reclaimed (0 = nothing left to do). Requires the writer lock;
  /// crash-safe because nothing touches disk until the next checkpoint.
  Result<size_t> CompactStep(size_t max_pages);

  /// Runs one CompactStep slice when accumulated dead bytes exceed
  /// `compact_threshold_bytes` (the background COMPACT task hook).
  Status MaybeCompact();

  /// Dead bytes currently reclaimable by COMPACT.
  uint64_t dead_bytes() const;

  StoreStats stats() const;
  CompactStats compact_stats() const;
  uint64_t wal_size_bytes() const;
  /// Size of the page file in bytes.
  uint64_t pages_size_bytes() const;
  uint32_t page_size() const { return pager_->page_size(); }

 private:
  NoteStore(std::string dir, StoreOptions options);

  struct IdEntry {
    Unid unid;
    uint32_t page = pager::kInvalidPage;
    uint16_t slot = 0;
    uint8_t flags = 0;
    Micros seq_time = 0;
  };

  std::string WalPath() const { return dir_ + "/notes.wal"; }
  std::string SnapshotPath() const { return dir_ + "/notes.snap"; }
  std::string MetaPath() const { return dir_ + "/notes.meta"; }
  std::string PagesPath() const { return dir_ + "/notes.pages"; }

  bool uses_shared_log() const { return options_.shared_log != nullptr; }

  Status Recover(const DatabaseInfo& default_info, std::string_view meta_blob,
                 bool have_meta) REQUIRES(mu_);
  /// Shared-log recovery: demultiplexes this store's stream and replays
  /// the suffix after its last checkpoint marker.
  Status RecoverFromSharedLog() REQUIRES(mu_);
  /// Ordered replay of one stream's record suffix: adopt the last
  /// kPagerSnapshot (if any) first — its images repair torn pages — then
  /// apply the kData records that follow it.
  Status ReplayRecords(
      const std::vector<std::pair<wal::RecordType, std::string>>& records)
      REQUIRES(mu_);
  Status LoadLegacySnapshot(std::string_view data) REQUIRES(mu_);
  Status ApplyBatchPayload(std::string_view payload, bool from_recovery)
      REQUIRES(mu_);
  Status CommitPayload(const std::string& payload);

  // -- Meta / snapshot encoding -----------------------------------------
  std::string EncodeMetaBlob() const REQUIRES(mu_);
  Status DecodeMetaBlob(std::string_view input) REQUIRES(mu_);
  std::string EncodePagerSnapshot() REQUIRES(mu_);
  Status AdoptPagerSnapshot(std::string_view payload) REQUIRES(mu_);
  /// Rebuilds unid_index_, live/stub counts and next_id_ by scanning the
  /// id-table pages (never touches bucket pages, so opening a database
  /// far larger than the buffer pool stays cheap).
  Status RebuildIndexFromIdTable() REQUIRES(mu_);

  // -- Lock-free read cores (caller holds mu_ at least shared) ----------
  Result<Note> GetCore(NoteId id) const REQUIRES_SHARED(mu_);
  NoteHandle FindCore(NoteId id) const REQUIRES_SHARED(mu_);

  // -- Id-table access ---------------------------------------------------
  size_t EntriesPerPage() const;
  /// Pins the id-table page holding `id` (NotFound beyond the table).
  Result<pager::PageRef> IdTablePageFor(NoteId id, size_t* slot_in_page) const
      REQUIRES_SHARED(mu_);
  /// Grows the id table until it covers `id`.
  Status EnsureIdCapacity(NoteId id) REQUIRES(mu_);
  /// Absent ids decode as an all-zero entry (flags == 0, i.e. unused).
  Result<IdEntry> ReadEntry(NoteId id) const REQUIRES_SHARED(mu_);
  Status WriteEntry(NoteId id, const IdEntry& entry) REQUIRES(mu_);

  // -- Note placement ----------------------------------------------------
  /// Appends `encoded` into the current fill page (allocating one when
  /// needed), or spills to an overflow chain; fills in entry location.
  Status PlaceNote(std::string_view encoded, IdEntry* entry) REQUIRES(mu_);
  Status PlaceSlot(std::string_view encoded, uint32_t* page, uint16_t* slot)
      REQUIRES(mu_);
  /// Releases the bytes behind an entry's location (slot kill or
  /// overflow-chain free) and updates dead-byte accounting; frees the
  /// page outright when its last live slot dies.
  Status KillLocation(const IdEntry& entry) REQUIRES(mu_);
  Result<Note> ReadNoteAt(const IdEntry& entry) const REQUIRES_SHARED(mu_);
  /// Installs one note version; returns {existed, was_live} for stats.
  Result<std::pair<bool, bool>> ApplyNote(Note&& note) REQUIRES(mu_);
  /// Removes an entry that is known to be in use.
  Status ApplyErase(NoteId id, const IdEntry& entry) REQUIRES(mu_);

  /// Registry accounting for one committed Put.
  void CountPut(bool existed, bool was_live, bool now_deleted);
  Status Fault(std::string_view point);

  std::string dir_;
  StoreOptions options_;

  /// The store's reader/writer lock (see the class comment). Also
  /// serializes BufferPool::Discard against reader pins: readers only
  /// hold pins while holding mu_ shared, and every Discard runs under
  /// mu_ exclusive.
  mutable SharedMutex mu_;

  DatabaseInfo info_ GUARDED_BY(mu_);
  /// Private log; null when the store runs on the shared log. The log
  /// itself is NOT guarded by mu_: commits append outside the exclusive
  /// section, relying on the owning Database serializing all writers
  /// (readers never touch it).
  std::unique_ptr<wal::LogWriter> wal_;
  /// Shared-log mode: payload bytes committed since the last checkpoint
  /// (the store's WAL obligation, driving MaybeCheckpoint).
  std::atomic<uint64_t> shared_bytes_since_checkpoint_{0};

  std::unique_ptr<pager::Pager> pager_;
  std::unique_ptr<pager::BufferPool> pool_;
  /// Id-table page numbers, in table order (entry index → page).
  std::vector<uint32_t> id_table_pages_ GUARDED_BY(mu_);
  /// Bucket page currently accepting new slots.
  uint32_t fill_page_ GUARDED_BY(mu_) = pager::kInvalidPage;
  /// Dead (reclaimable) payload bytes per bucket page — COMPACT's work
  /// queue. Ordered so compaction scans low pages first.
  std::map<uint32_t, uint64_t> dead_bytes_ GUARDED_BY(mu_);
  uint64_t dead_total_ GUARDED_BY(mu_) = 0;

  std::unordered_map<Unid, NoteId> unid_index_ GUARDED_BY(mu_);
  std::atomic<NoteId> next_id_{1};
  std::atomic<size_t> live_count_{0};
  std::atomic<size_t> stub_count_{0};
  /// Guards the StoreStats struct (plain fields read by stats() while a
  /// writer commits).
  mutable Mutex stats_mu_;
  StoreStats stats_ GUARDED_BY(stats_mu_);
  CompactStats compact_stats_ GUARDED_BY(mu_);

  // Server-wide stat hooks (see StoreOptions::stats).
  stats::StatRegistry* registry_;
  stats::Counter* ctr_docs_added_;
  stats::Counter* ctr_docs_updated_;
  stats::Counter* ctr_docs_deleted_;
  stats::Counter* ctr_docs_erased_;
  stats::Counter* ctr_stubs_purged_;
  stats::Counter* ctr_checkpoints_;
  stats::Counter* ctr_wal_records_;
  stats::Counter* ctr_wal_bytes_;
  stats::Counter* ctr_compact_runs_;
  stats::Counter* ctr_compact_pages_;
  stats::Counter* ctr_compact_bytes_;
  stats::Counter* ctr_compact_moved_;
  stats::Counter* ctr_pages_freed_inline_;
  stats::Gauge* gauge_notes_;
  stats::Gauge* gauge_dead_bytes_;
  stats::Histogram* hist_commit_micros_;
};

}  // namespace dominodb

#endif  // DOMINODB_STORAGE_NOTE_STORE_H_
