#include "mail/router.h"

#include "base/string_util.h"

namespace dominodb {

void MailDirectory::RegisterUser(const std::string& user,
                                 const std::string& home_server) {
  home_servers_[ToLower(user)] = home_server;
}

Result<std::string> MailDirectory::HomeServerOf(
    const std::string& user) const {
  auto it = home_servers_.find(ToLower(user));
  if (it == home_servers_.end()) {
    return Status::NotFound("no such user: " + user);
  }
  return it->second;
}

Note MakeMailMessage(const std::string& from,
                     const std::vector<std::string>& to,
                     const std::string& subject, const std::string& body) {
  Note memo(NoteClass::kDocument);
  memo.SetText("Form", "Memo");
  memo.SetText("From", from);
  memo.SetTextList("SendTo", to);
  memo.SetText("Subject", subject);
  memo.SetItem("Body", Value::RichText({RichTextRun{body, 0, ""}}));
  memo.SetNumber("$Hops", 0);
  return memo;
}

Router::Router(std::string server_name, Database* mailbox,
               const MailDirectory* directory, SimNet* net,
               stats::StatRegistry* stats)
    : server_name_(std::move(server_name)),
      mailbox_(mailbox),
      directory_(directory),
      net_(net),
      registry_(stats != nullptr ? stats : &stats::StatRegistry::Global()) {
  stats::StatRegistry& reg = *registry_;
  ctr_submitted_ = &reg.GetCounter("Mail.Submitted");
  ctr_delivered_ = &reg.GetCounter("Mail.Delivered");
  ctr_forwarded_ = &reg.GetCounter("Mail.Forwarded");
  ctr_dead_ = &reg.GetCounter("Mail.Dead");
  ctr_hops_ = &reg.GetCounter("Mail.Hops.Total");
}

void Router::DeadLetter(const std::string& user, size_t copies) {
  stats_.dead_lettered += copies;
  ctr_dead_->Add(copies);
  registry_->events().Log(
      stats::Severity::kWarning, "Router",
      "mail undeliverable on " + server_name_ + ": " + user,
      mailbox_->clock() != nullptr ? mailbox_->clock()->Now() : 0);
}

void Router::AttachMailFile(const std::string& user, Database* mail_file) {
  mail_files_[ToLower(user)] = mail_file;
}

void Router::SetNextHop(const std::string& destination,
                        const std::string& next_hop) {
  next_hops_[destination] = next_hop;
}

std::string Router::NextHopFor(const std::string& destination) const {
  auto it = next_hops_.find(destination);
  return it == next_hops_.end() ? destination : it->second;
}

Status Router::Submit(Note message) {
  if (!EqualsIgnoreCase(message.GetText("Form"), "Memo")) {
    return Status::InvalidArgument("not a mail memo");
  }
  stats_.submitted += 1;
  ctr_submitted_->Add();
  return mailbox_->CreateNote(std::move(message)).ok()
             ? Status::Ok()
             : Status::IOError("mail.box write failed");
}

Status Router::DeliverLocal(const std::string& user, const Note& message) {
  auto it = mail_files_.find(ToLower(user));
  if (it == mail_files_.end()) {
    DeadLetter(user);
    return Status::Ok();  // dead letter; routing continues
  }
  Note copy = message;
  copy.SetTime("DeliveredDate", mailbox_->clock() != nullptr
                                    ? mailbox_->clock()->Now()
                                    : 0);
  copy.SetText("DeliveredBy", server_name_);
  DOMINO_RETURN_IF_ERROR(it->second->CreateNote(std::move(copy)).status());
  stats_.delivered += 1;
  stats_.hops_total += static_cast<uint64_t>(message.GetNumber("$Hops"));
  ctr_delivered_->Add();
  ctr_hops_->Add(static_cast<uint64_t>(message.GetNumber("$Hops")));
  return Status::Ok();
}

Result<size_t> Router::RunOnce(const std::map<std::string, Router*>& peers) {
  // Snapshot pending messages first; delivery mutates the mailbox.
  std::vector<Note> pending;
  mailbox_->ForEachLiveNote([&](const Note& note) {
    if (EqualsIgnoreCase(note.GetText("Form"), "Memo")) {
      pending.push_back(note);
    }
  });

  for (const Note& message : pending) {
    const Value* send_to = message.FindValue("SendTo");
    std::vector<std::string> recipients =
        send_to != nullptr ? send_to->texts() : std::vector<std::string>();

    // Group recipients: local, per-remote-destination, unknown.
    std::vector<std::string> local_users;
    std::map<std::string, std::vector<std::string>> remote;  // dest → users
    for (const std::string& user : recipients) {
      auto home = directory_->HomeServerOf(user);
      if (!home.ok()) {
        DeadLetter(user);
        continue;
      }
      if (EqualsIgnoreCase(*home, server_name_)) {
        local_users.push_back(user);
      } else {
        remote[*home].push_back(user);
      }
    }

    for (const std::string& user : local_users) {
      DOMINO_RETURN_IF_ERROR(DeliverLocal(user, message));
    }

    for (const auto& [destination, users] : remote) {
      std::string hop = NextHopFor(destination);
      auto peer_it = peers.find(hop);
      if (peer_it == peers.end()) {
        DeadLetter("(no route to " + destination + ")", users.size());
        continue;
      }
      Note copy = message;
      copy.SetTextList("SendTo", users);
      copy.SetNumber("$Hops", message.GetNumber("$Hops") + 1);
      std::string encoded = copy.EncodeToString();
      if (net_ != nullptr) {
        DOMINO_RETURN_IF_ERROR(
            net_->Transfer(server_name_, hop, encoded.size() + 16));
      }
      DOMINO_RETURN_IF_ERROR(
          peer_it->second->mailbox()->CreateNote(std::move(copy)).status());
      stats_.forwarded += 1;
      ctr_forwarded_->Add();
    }

    DOMINO_RETURN_IF_ERROR(mailbox_->DeleteNote(message.id()));
  }
  return pending.size();
}

}  // namespace dominodb
