#include "mail/router.h"

#include "base/string_util.h"

namespace dominodb {

void MailDirectory::RegisterUser(const std::string& user,
                                 const std::string& home_server) {
  home_servers_[ToLower(user)] = home_server;
}

Result<std::string> MailDirectory::HomeServerOf(
    const std::string& user) const {
  auto it = home_servers_.find(ToLower(user));
  if (it == home_servers_.end()) {
    return Status::NotFound("no such user: " + user);
  }
  return it->second;
}

Note MakeMailMessage(const std::string& from,
                     const std::vector<std::string>& to,
                     const std::string& subject, const std::string& body) {
  Note memo(NoteClass::kDocument);
  memo.SetText("Form", "Memo");
  memo.SetText("From", from);
  memo.SetTextList("SendTo", to);
  memo.SetText("Subject", subject);
  memo.SetItem("Body", Value::RichText({RichTextRun{body, 0, ""}}));
  memo.SetNumber("$Hops", 0);
  return memo;
}

Router::Router(std::string server_name, Database* mailbox,
               const MailDirectory* directory, SimNet* net,
               stats::StatRegistry* stats)
    : server_name_(std::move(server_name)),
      mailbox_(mailbox),
      directory_(directory),
      net_(net),
      registry_(stats != nullptr ? stats : &stats::StatRegistry::Global()) {
  stats::StatRegistry& reg = *registry_;
  ctr_submitted_ = &reg.GetCounter("Mail.Submitted");
  ctr_delivered_ = &reg.GetCounter("Mail.Delivered");
  ctr_forwarded_ = &reg.GetCounter("Mail.Forwarded");
  ctr_dead_ = &reg.GetCounter("Mail.Dead");
  ctr_hops_ = &reg.GetCounter("Mail.Hops.Total");
  ctr_retries_ = &reg.GetCounter("Mail.Transfer.Retries");
}

void Router::DeadLetter(const std::string& user, const std::string& reason,
                        size_t copies) {
  stats_.dead_lettered += copies;
  ctr_dead_->Add(copies);
  registry_->events().Log(
      stats::Severity::kWarning, "Router",
      "mail undeliverable on " + server_name_ + ": " + user + " (" +
          reason + ")",
      mailbox_->clock() != nullptr ? mailbox_->clock()->Now() : 0);
}

void Router::InjectDeliveryFaultForTesting(const std::string& user,
                                           Status status) {
  delivery_fault_ = std::make_pair(ToLower(user), std::move(status));
}

void Router::AttachMailFile(const std::string& user, Database* mail_file) {
  mail_files_[ToLower(user)] = mail_file;
}

void Router::SetNextHop(const std::string& destination,
                        const std::string& next_hop) {
  next_hops_[destination] = next_hop;
}

std::string Router::NextHopFor(const std::string& destination) const {
  auto it = next_hops_.find(destination);
  return it == next_hops_.end() ? destination : it->second;
}

Status Router::Submit(Note message) {
  if (!EqualsIgnoreCase(message.GetText("Form"), "Memo")) {
    return Status::InvalidArgument("not a mail memo");
  }
  stats_.submitted += 1;
  ctr_submitted_->Add();
  // Surface the store's real status: callers must be able to tell an IO
  // failure from a rejected memo.
  return mailbox_->CreateNote(std::move(message)).status();
}

Status Router::DeliverLocal(const std::string& user, const Note& message) {
  auto it = mail_files_.find(ToLower(user));
  if (it == mail_files_.end()) {
    DeadLetter(user, "no mail file on " + server_name_);
    return Status::Ok();  // dead letter; routing continues
  }
  Note copy = message;
  copy.SetTime("DeliveredDate", mailbox_->clock() != nullptr
                                    ? mailbox_->clock()->Now()
                                    : 0);
  copy.SetText("DeliveredBy", server_name_);
  Status put;
  if (delivery_fault_.has_value() && delivery_fault_->first == ToLower(user)) {
    put = delivery_fault_->second;
    delivery_fault_.reset();
  } else {
    put = it->second->CreateNote(std::move(copy)).status();
  }
  if (!put.ok()) {
    // The mail file refused the copy; retrying cannot help, so the copy
    // dead-letters with the store's reason and the status propagates.
    DeadLetter(user, put.message());
    return put;
  }
  stats_.delivered += 1;
  stats_.hops_total += static_cast<uint64_t>(message.GetNumber("$Hops"));
  ctr_delivered_->Add();
  ctr_hops_->Add(static_cast<uint64_t>(message.GetNumber("$Hops")));
  return Status::Ok();
}

Result<size_t> Router::RunOnce(const std::map<std::string, Router*>& peers) {
  // Snapshot pending messages first; delivery mutates the mailbox.
  std::vector<Note> pending;
  mailbox_->ForEachLiveNote([&](const Note& note) {
    if (EqualsIgnoreCase(note.GetText("Form"), "Memo")) {
      pending.push_back(note);
    }
  });

  // First mail-file write failure of the pass; surfaced after every
  // message has been given its chance (one sick mail file must not stall
  // the rest of the queue).
  Status first_error;

  for (const Note& message : pending) {
    const Value* send_to = message.FindValue("SendTo");
    std::vector<std::string> recipients =
        send_to != nullptr ? send_to->texts() : std::vector<std::string>();

    // Group recipients: local, per-remote-destination, unknown.
    std::vector<std::string> local_users;
    std::map<std::string, std::vector<std::string>> remote;  // dest → users
    for (const std::string& user : recipients) {
      auto home = directory_->HomeServerOf(user);
      if (!home.ok()) {
        DeadLetter(user, home.status().message());
        continue;
      }
      if (EqualsIgnoreCase(*home, server_name_)) {
        local_users.push_back(user);
      } else {
        remote[*home].push_back(user);
      }
    }

    // Recipient copies still owed after this pass (transient transfer
    // failures only — every other outcome is delivery or a dead letter).
    std::vector<std::string> retry_users;

    for (const std::string& user : local_users) {
      Status delivered = DeliverLocal(user, message);
      if (!delivered.ok() && first_error.ok()) first_error = delivered;
    }

    for (const auto& [destination, users] : remote) {
      std::string hop = NextHopFor(destination);
      auto peer_it = peers.find(hop);
      if (peer_it == peers.end()) {
        DeadLetter("(no route to " + destination + ")",
                   "next hop " + hop + " is not a known router",
                   users.size());
        continue;
      }
      Note copy = message;
      copy.SetTextList("SendTo", users);
      copy.SetNumber("$Hops", message.GetNumber("$Hops") + 1);
      std::string encoded = copy.EncodeToString();
      if (net_ != nullptr) {
        Status sent = net_->Transfer(server_name_, hop, encoded.size() + 16);
        if (!sent.ok()) {
          // The link ate the transfer (partition, flap, injected fault):
          // transient, so these copies stay queued for the next pass.
          stats_.transfer_retries += 1;
          ctr_retries_->Add();
          retry_users.insert(retry_users.end(), users.begin(), users.end());
          continue;
        }
      }
      Status enqueued =
          peer_it->second->mailbox()->CreateNote(std::move(copy)).status();
      if (!enqueued.ok()) {
        // The peer's mail.box refused the copy: permanent for this pass's
        // purposes — dead-letter with the real reason and surface it.
        for (const std::string& user : users) {
          DeadLetter(user, enqueued.message());
        }
        if (first_error.ok()) first_error = enqueued;
        continue;
      }
      stats_.forwarded += 1;
      ctr_forwarded_->Add();
    }

    if (retry_users.empty()) {
      DOMINO_RETURN_IF_ERROR(mailbox_->DeleteNote(message.id()));
    } else if (retry_users.size() != recipients.size()) {
      // Partial progress: rewrite the queued memo's recipient list to the
      // remainder, so the retry pass cannot re-deliver the copies that
      // already landed (the duplicate-delivery bug this replaces).
      Note requeued = message;
      requeued.SetTextList("SendTo", retry_users);
      DOMINO_RETURN_IF_ERROR(mailbox_->UpdateNote(std::move(requeued)));
    }
    // else: no recipient progressed; the memo is left untouched.
  }
  if (!first_error.ok()) return first_error;
  return pending.size();
}

}  // namespace dominodb
