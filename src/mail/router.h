#ifndef DOMINODB_MAIL_ROUTER_H_
#define DOMINODB_MAIL_ROUTER_H_

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "base/result.h"
#include "core/database.h"
#include "net/sim_net.h"
#include "stats/stats.h"

namespace dominodb {

/// The name-and-address book (Domino Directory) subset the router needs:
/// which server hosts each user's mail file. Shared by all servers of a
/// domain.
class MailDirectory {
 public:
  void RegisterUser(const std::string& user, const std::string& home_server);
  Result<std::string> HomeServerOf(const std::string& user) const;
  size_t user_count() const { return home_servers_.size(); }

 private:
  std::map<std::string, std::string> home_servers_;  // lower(user) → server
};

/// Builds a memo document (Form = "Memo") ready for Router::Submit.
Note MakeMailMessage(const std::string& from,
                     const std::vector<std::string>& to,
                     const std::string& subject, const std::string& body);

struct MailStats {
  uint64_t submitted = 0;
  uint64_t delivered = 0;     // copies placed into mail files
  uint64_t forwarded = 0;     // copies handed to another server
  uint64_t dead_lettered = 0; // unknown recipients + permanent failures
  uint64_t hops_total = 0;    // sum of per-message hop counts at delivery
  /// Transient transfer failures (the SimNet link ate the message) that
  /// left the affected copies queued for the next RunOnce pass.
  uint64_t transfer_retries = 0;
};

/// The router task of one server: drains the server's mail.box, delivering
/// local recipients into their mail files and forwarding remote
/// recipients toward their home server via the next-hop table (multi-hop
/// routing, as in Notes named networks).
class Router {
 public:
  /// `stats` (nullable → the global registry) receives the server-wide
  /// `Mail.*` counters; dead letters also log a Warning event.
  Router(std::string server_name, Database* mailbox,
         const MailDirectory* directory, SimNet* net,
         stats::StatRegistry* stats = nullptr);

  /// Registers a locally hosted mail file.
  void AttachMailFile(const std::string& user, Database* mail_file);

  /// Explicit route: traffic for `destination` goes via `next_hop`.
  /// Without an entry the router sends directly.
  void SetNextHop(const std::string& destination,
                  const std::string& next_hop);

  /// Client submission into this server's mail.box. A mail.box write
  /// failure surfaces the store's real status (not a generic error).
  Status Submit(Note message);

  /// Processes every pending message once. `peers` maps server names to
  /// their routers (the transport is the shared SimNet). Returns the
  /// number of messages processed (retained-for-retry messages count as
  /// processed, so drain loops keep polling while work remains).
  ///
  /// Failure handling, per recipient copy:
  ///  - transient transfer failures (the link dropped the message) keep
  ///    exactly the undelivered copies queued — the memo's recipient list
  ///    is rewritten to the remainder, so a resumed transfer can never
  ///    duplicate a delivery that already happened;
  ///  - permanent failures (unknown recipient, no route, a mail-file
  ///    write error) dead-letter the copy with the failing user and the
  ///    real reason. The first store failure's status is surfaced as the
  ///    call's error after the pass completes.
  Result<size_t> RunOnce(const std::map<std::string, Router*>& peers);

  /// Test-only: forces the next local delivery for `user` to fail with
  /// `status` (cleared once it fires) — stands in for a store-level
  /// write failure, which the paged store offers no seam to inject.
  void InjectDeliveryFaultForTesting(const std::string& user, Status status);

  const MailStats& stats() const { return stats_; }
  Database* mailbox() { return mailbox_; }
  const std::string& server_name() const { return server_name_; }

 private:
  /// Delivers one copy into the user's local mail file. A missing mail
  /// file dead-letters and returns Ok (routing continues); a store write
  /// failure dead-letters with the real reason and returns that status.
  Status DeliverLocal(const std::string& user, const Note& message);
  std::string NextHopFor(const std::string& destination) const;
  void DeadLetter(const std::string& user, const std::string& reason,
                  size_t copies = 1);

  std::string server_name_;
  Database* mailbox_;
  const MailDirectory* directory_;
  SimNet* net_;
  std::map<std::string, Database*> mail_files_;  // lower(user) → db
  std::map<std::string, std::string> next_hops_;
  MailStats stats_;
  /// Armed by InjectDeliveryFaultForTesting: lower(user) → forced status.
  std::optional<std::pair<std::string, Status>> delivery_fault_;

  // Server-wide mirrors of MailStats (dotted Domino stat names).
  stats::StatRegistry* registry_;
  stats::Counter* ctr_submitted_;
  stats::Counter* ctr_delivered_;
  stats::Counter* ctr_forwarded_;
  stats::Counter* ctr_dead_;
  stats::Counter* ctr_hops_;
  stats::Counter* ctr_retries_;
};

}  // namespace dominodb

#endif  // DOMINODB_MAIL_ROUTER_H_
