#include "security/acl.h"

#include <algorithm>

#include "base/string_util.h"

namespace dominodb {

namespace {

constexpr char kDefaultEntryName[] = "-Default-";

bool MatchesPrincipal(const AclEntry& entry, const Principal& who) {
  if (EqualsIgnoreCase(entry.name, who.name)) return true;
  for (const std::string& group : who.groups) {
    if (EqualsIgnoreCase(entry.name, group)) return true;
  }
  return false;
}

}  // namespace

std::string_view AccessLevelName(AccessLevel level) {
  switch (level) {
    case AccessLevel::kNoAccess:
      return "No Access";
    case AccessLevel::kDepositor:
      return "Depositor";
    case AccessLevel::kReader:
      return "Reader";
    case AccessLevel::kAuthor:
      return "Author";
    case AccessLevel::kEditor:
      return "Editor";
    case AccessLevel::kDesigner:
      return "Designer";
    case AccessLevel::kManager:
      return "Manager";
  }
  return "?";
}

void Acl::SetEntry(std::string name, AccessLevel level,
                   std::vector<std::string> roles) {
  if (EqualsIgnoreCase(name, kDefaultEntryName)) {
    default_level_ = level;
    return;
  }
  for (AclEntry& entry : entries_) {
    if (EqualsIgnoreCase(entry.name, name)) {
      entry.level = level;
      entry.roles = std::move(roles);
      return;
    }
  }
  entries_.push_back(AclEntry{std::move(name), level, std::move(roles)});
}

bool Acl::RemoveEntry(std::string_view name) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (EqualsIgnoreCase(it->name, name)) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

const AclEntry* Acl::FindEntry(std::string_view name) const {
  for (const AclEntry& entry : entries_) {
    if (EqualsIgnoreCase(entry.name, name)) return &entry;
  }
  return nullptr;
}

AccessLevel Acl::LevelFor(const Principal& who) const {
  bool matched = false;
  AccessLevel best = AccessLevel::kNoAccess;
  for (const AclEntry& entry : entries_) {
    if (MatchesPrincipal(entry, who)) {
      matched = true;
      best = std::max(best, entry.level);
    }
  }
  return matched ? best : default_level_;
}

std::vector<std::string> Acl::RolesFor(const Principal& who) const {
  std::vector<std::string> roles;
  for (const AclEntry& entry : entries_) {
    if (!MatchesPrincipal(entry, who)) continue;
    for (const std::string& role : entry.roles) {
      bool seen = false;
      for (const std::string& r : roles) {
        if (EqualsIgnoreCase(r, role)) {
          seen = true;
          break;
        }
      }
      if (!seen) roles.push_back(role);
    }
  }
  return roles;
}

Note Acl::ToNote() const {
  Note note(NoteClass::kAcl);
  note.SetText("$Title", "$ACL");
  note.SetNumber("$DefaultLevel", static_cast<double>(default_level_));
  std::vector<std::string> names, levels, roles;
  for (const AclEntry& entry : entries_) {
    names.push_back(entry.name);
    levels.push_back(FormatNumber(static_cast<double>(entry.level)));
    roles.push_back(Join(entry.roles, ","));
  }
  note.SetTextList("$EntryNames", std::move(names));
  note.SetTextList("$EntryLevels", std::move(levels));
  note.SetTextList("$EntryRoles", std::move(roles));
  return note;
}

Result<Acl> Acl::FromNote(const Note& note) {
  if (note.note_class() != NoteClass::kAcl) {
    return Status::InvalidArgument("not an ACL note");
  }
  Acl acl;
  double level = note.GetNumber("$DefaultLevel",
                                static_cast<double>(AccessLevel::kReader));
  if (level < 0 || level > static_cast<double>(AccessLevel::kManager)) {
    return Status::Corruption("ACL note: bad default level");
  }
  acl.default_level_ = static_cast<AccessLevel>(level);
  const Value* names = note.FindValue("$EntryNames");
  const Value* levels = note.FindValue("$EntryLevels");
  const Value* roles = note.FindValue("$EntryRoles");
  size_t n = names != nullptr ? names->texts().size() : 0;
  for (size_t i = 0; i < n; ++i) {
    AclEntry entry;
    entry.name = names->texts()[i];
    double lv = (levels != nullptr && i < levels->texts().size())
                    ? Value::Text(levels->texts()[i]).AsNumber()
                    : 0;
    if (lv < 0 || lv > static_cast<double>(AccessLevel::kManager)) {
      return Status::Corruption("ACL note: bad entry level");
    }
    entry.level = static_cast<AccessLevel>(lv);
    if (roles != nullptr && i < roles->texts().size() &&
        !roles->texts()[i].empty()) {
      entry.roles = Split(roles->texts()[i], ",");
    }
    acl.entries_.push_back(std::move(entry));
  }
  return acl;
}

bool NameListMatches(const std::vector<std::string>& names,
                     const Principal& who,
                     const std::vector<std::string>& roles) {
  for (const std::string& name : names) {
    if (EqualsIgnoreCase(name, who.name)) return true;
    for (const std::string& group : who.groups) {
      if (EqualsIgnoreCase(name, group)) return true;
    }
    if (name.size() >= 2 && name.front() == '[' && name.back() == ']') {
      for (const std::string& role : roles) {
        if (EqualsIgnoreCase(name, role)) return true;
      }
    }
  }
  return false;
}

namespace {

/// Collects the text values of every item with `flag` set.
std::vector<std::string> NamesWithFlag(const Note& note, uint8_t flag) {
  std::vector<std::string> out;
  for (const Item& item : note.items()) {
    if ((item.flags & flag) == 0) continue;
    for (const std::string& s : item.value.texts()) {
      if (!s.empty()) out.push_back(s);
    }
  }
  return out;
}

}  // namespace

AccessContext ResolveAccess(const Acl& acl, const Principal& who) {
  return AccessContext{acl.LevelFor(who), acl.RolesFor(who)};
}

bool CanReadDocument(const AccessContext& access, const Principal& who,
                     const Note& note) {
  if (access.level < AccessLevel::kReader) return false;
  std::vector<std::string> readers = NamesWithFlag(note, kItemReaders);
  if (readers.empty()) return true;  // no reader restriction
  // Authors named on the document can always read it.
  std::vector<std::string> authors = NamesWithFlag(note, kItemAuthors);
  readers.insert(readers.end(), authors.begin(), authors.end());
  return NameListMatches(readers, who, access.roles);
}

bool CanEditDocument(const AccessContext& access, const Principal& who,
                     const Note& note) {
  if (access.level >= AccessLevel::kEditor) {
    // Editors must still be able to *see* the document.
    return CanReadDocument(access, who, note);
  }
  if (access.level == AccessLevel::kAuthor) {
    if (!CanReadDocument(access, who, note)) return false;
    std::vector<std::string> authors = NamesWithFlag(note, kItemAuthors);
    return NameListMatches(authors, who, access.roles);
  }
  return false;
}

bool CanReadDocument(const Acl& acl, const Principal& who, const Note& note) {
  return CanReadDocument(ResolveAccess(acl, who), who, note);
}

bool CanEditDocument(const Acl& acl, const Principal& who, const Note& note) {
  return CanEditDocument(ResolveAccess(acl, who), who, note);
}

bool CanCreateDocuments(const Acl& acl, const Principal& who) {
  return acl.LevelFor(who) >= AccessLevel::kDepositor &&
         acl.LevelFor(who) != AccessLevel::kReader;
}

bool CanChangeDesign(const Acl& acl, const Principal& who) {
  return acl.LevelFor(who) >= AccessLevel::kDesigner;
}

bool CanChangeAcl(const Acl& acl, const Principal& who) {
  return acl.LevelFor(who) >= AccessLevel::kManager;
}

}  // namespace dominodb
