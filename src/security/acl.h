#ifndef DOMINODB_SECURITY_ACL_H_
#define DOMINODB_SECURITY_ACL_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "model/note.h"

namespace dominodb {

/// The seven Notes database access levels, weakest to strongest.
enum class AccessLevel : uint8_t {
  kNoAccess = 0,
  kDepositor = 1,  // may create documents, may read none
  kReader = 2,     // may read (subject to reader fields)
  kAuthor = 3,     // may create; may edit docs naming them in Authors items
  kEditor = 4,     // may edit all documents
  kDesigner = 5,   // may additionally change design notes
  kManager = 6,    // may additionally change the ACL
};

std::string_view AccessLevelName(AccessLevel level);

/// Whoever is asking: a user name plus group memberships (the paper's
/// simplification of the hierarchical Notes names/ID infrastructure).
struct Principal {
  std::string name;
  std::vector<std::string> groups;

  static Principal User(std::string name) { return Principal{std::move(name), {}}; }
};

/// One ACL slot: a user or group name, its level, and role grants.
/// Roles are written "[RoleName]" wherever names appear (reader fields,
/// author fields), exactly like Notes.
struct AclEntry {
  std::string name;
  AccessLevel level = AccessLevel::kNoAccess;
  std::vector<std::string> roles;
};

/// The database access control list. Stored as an ACL note so it
/// replicates with the database (replicating ACL changes is how Notes
/// administers distributed access control — a point the paper makes).
///
/// Not internally synchronized: the owning Database guards its Acl with
/// the facade's reader/writer lock — shared for the const checks
/// (LevelFor, RolesFor, CanReadDocument, ...), exclusive for SetEntry /
/// RemoveEntry / set_default_level. The const surface is safe to call
/// from any number of reader threads at once.
class Acl {
 public:
  Acl() = default;

  /// Adds or replaces the entry for `name`.
  void SetEntry(std::string name, AccessLevel level,
                std::vector<std::string> roles = {});
  bool RemoveEntry(std::string_view name);
  const AclEntry* FindEntry(std::string_view name) const;
  const std::vector<AclEntry>& entries() const { return entries_; }

  AccessLevel default_level() const { return default_level_; }
  void set_default_level(AccessLevel level) { default_level_ = level; }

  /// Effective level: the strongest level among entries matching the
  /// principal's name or groups; the default entry otherwise.
  AccessLevel LevelFor(const Principal& who) const;

  /// Roles granted through any matching entry, in "[Role]" form.
  std::vector<std::string> RolesFor(const Principal& who) const;

  // Persist as / load from an ACL note.
  Note ToNote() const;
  static Result<Acl> FromNote(const Note& note);

 private:
  std::vector<AclEntry> entries_;
  AccessLevel default_level_ = AccessLevel::kReader;
};

/// A principal's access resolved against one ACL: effective level plus
/// expanded role grants. Resolving walks every ACL entry against the
/// principal's name and groups, which is pure overhead to repeat per
/// document — secured view traversals and searches resolve once per pass
/// and then run the per-document reader/author checks against the memo.
struct AccessContext {
  AccessLevel level = AccessLevel::kNoAccess;
  std::vector<std::string> roles;
};

/// Resolves `who` once (level + roles) for repeated document checks.
AccessContext ResolveAccess(const Acl& acl, const Principal& who);

/// Document-level checks combining the ACL with reader/author items.
/// Reader items (kItemReaders) restrict reading to the named principals,
/// roles, or authors; author items (kItemAuthors) grant editing to
/// Author-level principals.
bool CanReadDocument(const Acl& acl, const Principal& who, const Note& note);
bool CanEditDocument(const Acl& acl, const Principal& who, const Note& note);

/// Memoized variants: same result as the Acl overloads, without the
/// per-document level/role re-resolution.
bool CanReadDocument(const AccessContext& access, const Principal& who,
                     const Note& note);
bool CanEditDocument(const AccessContext& access, const Principal& who,
                     const Note& note);
bool CanCreateDocuments(const Acl& acl, const Principal& who);
bool CanChangeDesign(const Acl& acl, const Principal& who);
bool CanChangeAcl(const Acl& acl, const Principal& who);

/// True if the principal (name, groups, or roles) appears in `names`.
bool NameListMatches(const std::vector<std::string>& names,
                     const Principal& who,
                     const std::vector<std::string>& roles);

}  // namespace dominodb

#endif  // DOMINODB_SECURITY_ACL_H_
