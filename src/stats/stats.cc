#include "stats/stats.h"

#include <algorithm>

#include "base/string_util.h"

namespace dominodb::stats {

namespace {

/// Case-insensitive prefix filter with an optional trailing '*'.
bool MatchesPattern(const std::string& name, const std::string& pattern) {
  if (pattern.empty()) return true;
  std::string_view want(pattern);
  if (!want.empty() && want.back() == '*') want.remove_suffix(1);
  if (want.size() > name.size()) return false;
  return EqualsIgnoreCase(std::string_view(name).substr(0, want.size()),
                          want);
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrPrintf("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

HistogramSummary Summarize(const Histogram& h) {
  HistogramSummary s;
  s.count = h.count();
  s.sum = h.sum();
  s.p50 = h.Percentile(0.50);
  s.p95 = h.Percentile(0.95);
  s.p99 = h.Percentile(0.99);
  s.max = h.max();
  return s;
}

}  // namespace

// -- Histogram --------------------------------------------------------------

uint64_t Histogram::BucketUpperBound(size_t i) {
  return i + 1 >= kNumBuckets ? ~0ull : 1ull << i;
}

size_t Histogram::BucketFor(uint64_t value) {
  size_t i = 0;
  while (i + 1 < kNumBuckets && value > BucketUpperBound(i)) ++i;
  return i;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

uint64_t Histogram::Percentile(double p) const {
  uint64_t n = count();
  if (n == 0) return 0;
  p = std::min(std::max(p, 0.0), 1.0);
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(n));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += bucket_count(i);
    if (seen >= rank) {
      // A bucket's power-of-two upper bound can overshoot the largest
      // value actually recorded (a single sample of 5 lands in the
      // (4, 8] bucket), so clamp to the observed max. The unbounded
      // tail bucket's ~0 bound clamps the same way.
      return std::min(BucketUpperBound(i), max());
    }
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// -- EventLog ---------------------------------------------------------------

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNormal:
      return "Normal";
    case Severity::kWarning:
      return "Warning";
    case Severity::kFailure:
      return "Failure";
    case Severity::kFatal:
      return "Fatal";
  }
  return "Unknown";
}

void EventLog::Log(Severity severity, const std::string& source,
                   const std::string& message, Micros when) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{when, severity, source, message});
  if (events_.size() > capacity_) events_.pop_front();
  ++total_;
}

std::vector<Event> EventLog::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Event>(events_.begin(), events_.end());
}

uint64_t EventLog::total_logged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

size_t EventLog::CountRetained(Severity severity) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const Event& e : events_) {
    if (e.severity == severity) ++n;
  }
  return n;
}

void EventLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  total_ = 0;
}

// -- StatSnapshot -----------------------------------------------------------

std::string StatSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out += StrPrintf(":%llu", static_cast<unsigned long long>(value));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out += StrPrintf(":%lld", static_cast<long long>(value));
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out += StrPrintf(
        ":{\"count\":%llu,\"sum\":%llu,\"p50\":%llu,\"p95\":%llu,"
        "\"p99\":%llu,\"max\":%llu}",
        static_cast<unsigned long long>(h.count),
        static_cast<unsigned long long>(h.sum),
        static_cast<unsigned long long>(h.p50),
        static_cast<unsigned long long>(h.p95),
        static_cast<unsigned long long>(h.p99),
        static_cast<unsigned long long>(h.max));
  }
  out += StrPrintf("},\"events\":%llu}",
                   static_cast<unsigned long long>(events_logged));
  return out;
}

StatSnapshot DiffSnapshots(const StatSnapshot& before,
                           const StatSnapshot& after) {
  StatSnapshot diff;
  for (const auto& [name, value] : after.counters) {
    auto it = before.counters.find(name);
    uint64_t base = it == before.counters.end() ? 0 : it->second;
    diff.counters[name] = value >= base ? value - base : 0;
  }
  diff.gauges = after.gauges;
  for (const auto& [name, h] : after.histograms) {
    HistogramSummary d = h;
    auto it = before.histograms.find(name);
    if (it != before.histograms.end()) {
      d.count = h.count >= it->second.count ? h.count - it->second.count : 0;
      d.sum = h.sum >= it->second.sum ? h.sum - it->second.sum : 0;
    }
    diff.histograms[name] = d;
  }
  diff.events_logged = after.events_logged >= before.events_logged
                           ? after.events_logged - before.events_logged
                           : 0;
  return diff;
}

// -- StatRegistry -----------------------------------------------------------

StatRegistry& StatRegistry::Global() {
  static StatRegistry* global = new StatRegistry();
  return *global;
}

template <typename T>
T& StatRegistry::GetOrCreate(std::map<std::string, std::unique_ptr<T>>* table,
                             const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<T>& slot = (*table)[name];
  if (slot == nullptr) slot = std::make_unique<T>();
  return *slot;
}

Counter& StatRegistry::GetCounter(const std::string& name) {
  return GetOrCreate(&counters_, name);
}

Gauge& StatRegistry::GetGauge(const std::string& name) {
  return GetOrCreate(&gauges_, name);
}

Histogram& StatRegistry::GetHistogram(const std::string& name) {
  return GetOrCreate(&histograms_, name);
}

const Counter* StatRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* StatRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* StatRegistry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void StatRegistry::AddThreshold(const std::string& stat, uint64_t threshold,
                                Severity severity,
                                const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const ThresholdRule& rule : rules_) {
    if (rule.stat == stat && rule.threshold == threshold) return;
  }
  rules_.push_back(ThresholdRule{stat, threshold, severity, message, false});
}

size_t StatRegistry::CheckThresholds(Micros now) {
  // Snapshot the rules under the lock, evaluate and log outside it (the
  // event log has its own mutex).
  std::vector<std::pair<size_t, ThresholdRule>> due;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < rules_.size(); ++i) {
      if (rules_[i].fired) continue;
      // Counters first; gauges are also eligible so level-style stats
      // (queue depths, pending mail) can arm threshold events.
      uint64_t value = 0;
      if (auto it = counters_.find(rules_[i].stat); it != counters_.end()) {
        value = it->second->value();
      } else if (auto git = gauges_.find(rules_[i].stat);
                 git != gauges_.end()) {
        int64_t v = git->second->value();
        value = v > 0 ? static_cast<uint64_t>(v) : 0;
      } else {
        continue;
      }
      if (value >= rules_[i].threshold) {
        rules_[i].fired = true;
        due.emplace_back(i, rules_[i]);
      }
    }
  }
  for (const auto& [index, rule] : due) {
    events_.Log(rule.severity, "Collector",
                rule.message + " (" + rule.stat + " >= " +
                    std::to_string(rule.threshold) + ")",
                now);
  }
  return due.size();
}

std::vector<std::string> StatRegistry::StatNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) names.push_back(name);
  for (const auto& [name, g] : gauges_) names.push_back(name);
  for (const auto& [name, h] : histograms_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

void StatRegistry::ForEachCounter(
    const std::function<void(const std::string&, uint64_t)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) fn(name, counter->value());
}

StatSnapshot StatRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  StatSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = Summarize(*histogram);
  }
  snap.events_logged = events_.total_logged();
  return snap;
}

std::string StatRegistry::ShowStat(const std::string& pattern) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  // One merged, sorted listing — counters and gauges print as plain
  // values, histograms as a summary line (Domino prints all stat types
  // uniformly under `show stat`).
  std::map<std::string, std::string> lines;
  for (const auto& [name, counter] : counters_) {
    lines[name] =
        StrPrintf("%llu", static_cast<unsigned long long>(counter->value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    lines[name] = StrPrintf("%lld", static_cast<long long>(gauge->value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    lines[name] = StrPrintf(
        "%llu samples, avg %.1f, p95 %llu, p99 %llu, max %llu",
        static_cast<unsigned long long>(histogram->count()),
        histogram->Mean(),
        static_cast<unsigned long long>(histogram->Percentile(0.95)),
        static_cast<unsigned long long>(histogram->Percentile(0.99)),
        static_cast<unsigned long long>(histogram->max()));
  }
  for (const auto& [name, value] : lines) {
    if (!MatchesPattern(name, pattern)) continue;
    out += "  " + name + " = " + value + "\n";
  }
  return out;
}

std::string StatRegistry::ShowStatJson(const std::string& pattern) const {
  StatSnapshot snap = Snapshot();
  if (!pattern.empty()) {
    std::erase_if(snap.counters, [&](const auto& kv) {
      return !MatchesPattern(kv.first, pattern);
    });
    std::erase_if(snap.gauges, [&](const auto& kv) {
      return !MatchesPattern(kv.first, pattern);
    });
    std::erase_if(snap.histograms, [&](const auto& kv) {
      return !MatchesPattern(kv.first, pattern);
    });
  }
  return snap.ToJson();
}

void StatRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  for (ThresholdRule& rule : rules_) rule.fired = false;
  events_.Clear();
}

}  // namespace dominodb::stats
