#ifndef DOMINODB_STATS_STATS_H_
#define DOMINODB_STATS_STATS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/clock.h"

namespace dominodb::stats {

/// Monotonic counter. Increments are relaxed atomics so hot paths
/// (note writes, view evaluations, per-message accounting) pay one
/// uncontended fetch_add and nothing else.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (open databases, pending mail, ...). Signed so
/// Add(-1) works for teardown paths.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram for latency-ish values (microseconds by
/// convention). Bucket i covers (2^(i-1), 2^i] so the range spans 1 µs to
/// ~9 minutes; recording is two relaxed atomic adds plus a max update.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 30;

  /// Upper bound of bucket `i` (inclusive). The last bucket is unbounded.
  static uint64_t BucketUpperBound(size_t i);
  /// Bucket index `value` falls into.
  static size_t BucketFor(uint64_t value);

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  double Mean() const;
  /// Smallest bucket upper bound covering fraction `p` (0..1) of samples,
  /// clamped to the recorded max so the report never exceeds any observed
  /// value; 0 when empty. The unbounded tail bucket reports the max.
  uint64_t Percentile(double p) const;

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Event severities, after Domino's Statistics & Events facility.
enum class Severity { kNormal = 0, kWarning = 1, kFailure = 2, kFatal = 3 };

const char* SeverityName(Severity severity);

struct Event {
  Micros when = 0;
  Severity severity = Severity::kNormal;
  std::string source;   // originating task ("Replica", "Router", "Store")
  std::string message;  // human-readable description
};

/// Bounded in-memory event log (the log.nsf substitute). Keeps the most
/// recent `capacity` events; `total_logged()` keeps counting past that.
class EventLog {
 public:
  explicit EventLog(size_t capacity = 512) : capacity_(capacity) {}

  void Log(Severity severity, const std::string& source,
           const std::string& message, Micros when = 0);

  /// Copy of the retained events, oldest first.
  std::vector<Event> Events() const;
  uint64_t total_logged() const;
  /// Events of exactly this severity among the retained window.
  size_t CountRetained(Severity severity) const;

  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Event> events_;
  uint64_t total_ = 0;
};

/// Summary of one histogram at snapshot time.
struct HistogramSummary {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
};

/// Point-in-time copy of every stat in a registry. Cheap to diff, so
/// experiments bracket a workload with two snapshots and report deltas.
struct StatSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSummary> histograms;
  uint64_t events_logged = 0;

  std::string ToJson() const;
};

/// `after - before`: counters and histogram count/sum subtract, gauges and
/// percentiles take the `after` value. Stats absent from `before` count
/// from zero.
StatSnapshot DiffSnapshots(const StatSnapshot& before,
                           const StatSnapshot& after);

/// The process- or server-wide stat table, named with Domino-style dotted
/// paths (`Replica.Docs.Received`, `Mail.Dead`, `Database.View.Rebuilds`).
/// `Global()` is the default process-wide instance; a Server may own a
/// private registry so multi-server experiments can diff stats per host.
///
/// Get* registers on first use and returns a stable reference (never
/// invalidated), so components resolve their counters once and increment
/// lock-free afterwards.
class StatRegistry {
 public:
  StatRegistry() = default;
  StatRegistry(const StatRegistry&) = delete;
  StatRegistry& operator=(const StatRegistry&) = delete;

  static StatRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// nullptr when the stat was never registered.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  EventLog& events() { return events_; }
  const EventLog& events() const { return events_; }

  /// Threshold event generator (Domino "statistic event"): once the named
  /// counter (or gauge) reaches `threshold`, CheckThresholds logs one event of the
  /// given severity. Latched until ResetAll re-arms it. Duplicate
  /// (stat, threshold) registrations are ignored.
  void AddThreshold(const std::string& stat, uint64_t threshold,
                    Severity severity, const std::string& message);
  /// Evaluates all armed thresholds (the Collector poll); returns how many
  /// fired this call.
  size_t CheckThresholds(Micros now = 0);

  /// Sorted names of all registered stats (counters, gauges, histograms).
  std::vector<std::string> StatNames() const;
  void ForEachCounter(
      const std::function<void(const std::string&, uint64_t)>& fn) const;

  StatSnapshot Snapshot() const;

  /// The `show stat` console command: one "  Name = value" line per stat,
  /// sorted. `pattern` is a case-insensitive prefix filter, with an
  /// optional trailing '*' (e.g. "Replica.*", "mail").
  std::string ShowStat(const std::string& pattern = "") const;
  /// Same filter, one JSON object (counters/gauges/histograms/events).
  std::string ShowStatJson(const std::string& pattern = "") const;

  /// Zeroes every stat, clears the event log and re-arms thresholds.
  void ResetAll();

 private:
  template <typename T>
  T& GetOrCreate(std::map<std::string, std::unique_ptr<T>>* table,
                 const std::string& name);

  struct ThresholdRule {
    std::string stat;
    uint64_t threshold = 0;
    Severity severity = Severity::kWarning;
    std::string message;
    bool fired = false;
  };

  mutable std::mutex mu_;  // guards the maps & rules; stat objects are
                           // node-stable and internally atomic
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::vector<ThresholdRule> rules_;
  EventLog events_;
};

}  // namespace dominodb::stats

#endif  // DOMINODB_STATS_STATS_H_
