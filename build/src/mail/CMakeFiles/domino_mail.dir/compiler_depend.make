# Empty compiler generated dependencies file for domino_mail.
# This may be replaced when dependencies are built.
