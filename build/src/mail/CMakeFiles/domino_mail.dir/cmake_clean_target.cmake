file(REMOVE_RECURSE
  "libdomino_mail.a"
)
