file(REMOVE_RECURSE
  "CMakeFiles/domino_mail.dir/router.cc.o"
  "CMakeFiles/domino_mail.dir/router.cc.o.d"
  "libdomino_mail.a"
  "libdomino_mail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_mail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
