file(REMOVE_RECURSE
  "libdomino_server.a"
)
