# Empty compiler generated dependencies file for domino_server.
# This may be replaced when dependencies are built.
