file(REMOVE_RECURSE
  "CMakeFiles/domino_server.dir/replication_scheduler.cc.o"
  "CMakeFiles/domino_server.dir/replication_scheduler.cc.o.d"
  "CMakeFiles/domino_server.dir/server.cc.o"
  "CMakeFiles/domino_server.dir/server.cc.o.d"
  "libdomino_server.a"
  "libdomino_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
