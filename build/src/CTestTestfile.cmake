# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("model")
subdirs("wal")
subdirs("storage")
subdirs("formula")
subdirs("view")
subdirs("security")
subdirs("fulltext")
subdirs("core")
subdirs("agent")
subdirs("net")
subdirs("repl")
subdirs("mail")
subdirs("server")
