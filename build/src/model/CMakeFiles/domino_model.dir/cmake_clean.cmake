file(REMOVE_RECURSE
  "CMakeFiles/domino_model.dir/collation.cc.o"
  "CMakeFiles/domino_model.dir/collation.cc.o.d"
  "CMakeFiles/domino_model.dir/datetime.cc.o"
  "CMakeFiles/domino_model.dir/datetime.cc.o.d"
  "CMakeFiles/domino_model.dir/note.cc.o"
  "CMakeFiles/domino_model.dir/note.cc.o.d"
  "CMakeFiles/domino_model.dir/unid.cc.o"
  "CMakeFiles/domino_model.dir/unid.cc.o.d"
  "CMakeFiles/domino_model.dir/value.cc.o"
  "CMakeFiles/domino_model.dir/value.cc.o.d"
  "libdomino_model.a"
  "libdomino_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
