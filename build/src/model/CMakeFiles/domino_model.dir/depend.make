# Empty dependencies file for domino_model.
# This may be replaced when dependencies are built.
