file(REMOVE_RECURSE
  "libdomino_model.a"
)
