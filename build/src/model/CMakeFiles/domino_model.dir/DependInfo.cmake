
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/collation.cc" "src/model/CMakeFiles/domino_model.dir/collation.cc.o" "gcc" "src/model/CMakeFiles/domino_model.dir/collation.cc.o.d"
  "/root/repo/src/model/datetime.cc" "src/model/CMakeFiles/domino_model.dir/datetime.cc.o" "gcc" "src/model/CMakeFiles/domino_model.dir/datetime.cc.o.d"
  "/root/repo/src/model/note.cc" "src/model/CMakeFiles/domino_model.dir/note.cc.o" "gcc" "src/model/CMakeFiles/domino_model.dir/note.cc.o.d"
  "/root/repo/src/model/unid.cc" "src/model/CMakeFiles/domino_model.dir/unid.cc.o" "gcc" "src/model/CMakeFiles/domino_model.dir/unid.cc.o.d"
  "/root/repo/src/model/value.cc" "src/model/CMakeFiles/domino_model.dir/value.cc.o" "gcc" "src/model/CMakeFiles/domino_model.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/domino_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
