file(REMOVE_RECURSE
  "CMakeFiles/domino_wal.dir/log_reader.cc.o"
  "CMakeFiles/domino_wal.dir/log_reader.cc.o.d"
  "CMakeFiles/domino_wal.dir/log_writer.cc.o"
  "CMakeFiles/domino_wal.dir/log_writer.cc.o.d"
  "libdomino_wal.a"
  "libdomino_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
