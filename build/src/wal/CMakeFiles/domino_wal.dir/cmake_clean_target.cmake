file(REMOVE_RECURSE
  "libdomino_wal.a"
)
