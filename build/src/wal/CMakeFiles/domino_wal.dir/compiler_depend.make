# Empty compiler generated dependencies file for domino_wal.
# This may be replaced when dependencies are built.
