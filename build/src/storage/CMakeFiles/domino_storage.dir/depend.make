# Empty dependencies file for domino_storage.
# This may be replaced when dependencies are built.
