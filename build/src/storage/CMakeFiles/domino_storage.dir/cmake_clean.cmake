file(REMOVE_RECURSE
  "CMakeFiles/domino_storage.dir/note_store.cc.o"
  "CMakeFiles/domino_storage.dir/note_store.cc.o.d"
  "libdomino_storage.a"
  "libdomino_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
