file(REMOVE_RECURSE
  "libdomino_storage.a"
)
