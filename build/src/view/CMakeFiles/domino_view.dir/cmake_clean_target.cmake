file(REMOVE_RECURSE
  "libdomino_view.a"
)
