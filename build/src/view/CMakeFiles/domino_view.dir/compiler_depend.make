# Empty compiler generated dependencies file for domino_view.
# This may be replaced when dependencies are built.
