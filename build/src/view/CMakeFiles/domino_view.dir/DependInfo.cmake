
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/view/view_design.cc" "src/view/CMakeFiles/domino_view.dir/view_design.cc.o" "gcc" "src/view/CMakeFiles/domino_view.dir/view_design.cc.o.d"
  "/root/repo/src/view/view_index.cc" "src/view/CMakeFiles/domino_view.dir/view_index.cc.o" "gcc" "src/view/CMakeFiles/domino_view.dir/view_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/formula/CMakeFiles/domino_formula.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/domino_model.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/domino_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
