file(REMOVE_RECURSE
  "CMakeFiles/domino_view.dir/view_design.cc.o"
  "CMakeFiles/domino_view.dir/view_design.cc.o.d"
  "CMakeFiles/domino_view.dir/view_index.cc.o"
  "CMakeFiles/domino_view.dir/view_index.cc.o.d"
  "libdomino_view.a"
  "libdomino_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
