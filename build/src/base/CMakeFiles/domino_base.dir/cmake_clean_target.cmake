file(REMOVE_RECURSE
  "libdomino_base.a"
)
