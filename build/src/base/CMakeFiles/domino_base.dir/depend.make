# Empty dependencies file for domino_base.
# This may be replaced when dependencies are built.
