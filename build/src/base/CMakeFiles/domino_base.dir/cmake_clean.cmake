file(REMOVE_RECURSE
  "CMakeFiles/domino_base.dir/clock.cc.o"
  "CMakeFiles/domino_base.dir/clock.cc.o.d"
  "CMakeFiles/domino_base.dir/coding.cc.o"
  "CMakeFiles/domino_base.dir/coding.cc.o.d"
  "CMakeFiles/domino_base.dir/crc32c.cc.o"
  "CMakeFiles/domino_base.dir/crc32c.cc.o.d"
  "CMakeFiles/domino_base.dir/env.cc.o"
  "CMakeFiles/domino_base.dir/env.cc.o.d"
  "CMakeFiles/domino_base.dir/status.cc.o"
  "CMakeFiles/domino_base.dir/status.cc.o.d"
  "CMakeFiles/domino_base.dir/string_util.cc.o"
  "CMakeFiles/domino_base.dir/string_util.cc.o.d"
  "libdomino_base.a"
  "libdomino_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
