file(REMOVE_RECURSE
  "CMakeFiles/domino_agent.dir/agent.cc.o"
  "CMakeFiles/domino_agent.dir/agent.cc.o.d"
  "libdomino_agent.a"
  "libdomino_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
