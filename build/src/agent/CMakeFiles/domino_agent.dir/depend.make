# Empty dependencies file for domino_agent.
# This may be replaced when dependencies are built.
