file(REMOVE_RECURSE
  "libdomino_agent.a"
)
