# Empty compiler generated dependencies file for domino_fulltext.
# This may be replaced when dependencies are built.
