file(REMOVE_RECURSE
  "CMakeFiles/domino_fulltext.dir/fulltext_index.cc.o"
  "CMakeFiles/domino_fulltext.dir/fulltext_index.cc.o.d"
  "CMakeFiles/domino_fulltext.dir/query.cc.o"
  "CMakeFiles/domino_fulltext.dir/query.cc.o.d"
  "CMakeFiles/domino_fulltext.dir/tokenizer.cc.o"
  "CMakeFiles/domino_fulltext.dir/tokenizer.cc.o.d"
  "libdomino_fulltext.a"
  "libdomino_fulltext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_fulltext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
