file(REMOVE_RECURSE
  "libdomino_fulltext.a"
)
