file(REMOVE_RECURSE
  "CMakeFiles/domino_net.dir/sim_net.cc.o"
  "CMakeFiles/domino_net.dir/sim_net.cc.o.d"
  "libdomino_net.a"
  "libdomino_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
