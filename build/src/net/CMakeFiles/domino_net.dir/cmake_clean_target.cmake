file(REMOVE_RECURSE
  "libdomino_net.a"
)
