# Empty dependencies file for domino_repl.
# This may be replaced when dependencies are built.
