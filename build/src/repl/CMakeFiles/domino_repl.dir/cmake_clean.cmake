file(REMOVE_RECURSE
  "CMakeFiles/domino_repl.dir/replicator.cc.o"
  "CMakeFiles/domino_repl.dir/replicator.cc.o.d"
  "libdomino_repl.a"
  "libdomino_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
