file(REMOVE_RECURSE
  "libdomino_repl.a"
)
