file(REMOVE_RECURSE
  "libdomino_security.a"
)
