# Empty compiler generated dependencies file for domino_security.
# This may be replaced when dependencies are built.
