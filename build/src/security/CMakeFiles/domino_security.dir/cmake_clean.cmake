file(REMOVE_RECURSE
  "CMakeFiles/domino_security.dir/acl.cc.o"
  "CMakeFiles/domino_security.dir/acl.cc.o.d"
  "libdomino_security.a"
  "libdomino_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
