
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/formula/eval.cc" "src/formula/CMakeFiles/domino_formula.dir/eval.cc.o" "gcc" "src/formula/CMakeFiles/domino_formula.dir/eval.cc.o.d"
  "/root/repo/src/formula/formula.cc" "src/formula/CMakeFiles/domino_formula.dir/formula.cc.o" "gcc" "src/formula/CMakeFiles/domino_formula.dir/formula.cc.o.d"
  "/root/repo/src/formula/functions.cc" "src/formula/CMakeFiles/domino_formula.dir/functions.cc.o" "gcc" "src/formula/CMakeFiles/domino_formula.dir/functions.cc.o.d"
  "/root/repo/src/formula/lexer.cc" "src/formula/CMakeFiles/domino_formula.dir/lexer.cc.o" "gcc" "src/formula/CMakeFiles/domino_formula.dir/lexer.cc.o.d"
  "/root/repo/src/formula/parser.cc" "src/formula/CMakeFiles/domino_formula.dir/parser.cc.o" "gcc" "src/formula/CMakeFiles/domino_formula.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/domino_model.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/domino_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
