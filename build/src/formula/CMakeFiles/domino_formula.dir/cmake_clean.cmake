file(REMOVE_RECURSE
  "CMakeFiles/domino_formula.dir/eval.cc.o"
  "CMakeFiles/domino_formula.dir/eval.cc.o.d"
  "CMakeFiles/domino_formula.dir/formula.cc.o"
  "CMakeFiles/domino_formula.dir/formula.cc.o.d"
  "CMakeFiles/domino_formula.dir/functions.cc.o"
  "CMakeFiles/domino_formula.dir/functions.cc.o.d"
  "CMakeFiles/domino_formula.dir/lexer.cc.o"
  "CMakeFiles/domino_formula.dir/lexer.cc.o.d"
  "CMakeFiles/domino_formula.dir/parser.cc.o"
  "CMakeFiles/domino_formula.dir/parser.cc.o.d"
  "libdomino_formula.a"
  "libdomino_formula.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_formula.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
