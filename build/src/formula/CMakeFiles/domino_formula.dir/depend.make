# Empty dependencies file for domino_formula.
# This may be replaced when dependencies are built.
