file(REMOVE_RECURSE
  "libdomino_formula.a"
)
