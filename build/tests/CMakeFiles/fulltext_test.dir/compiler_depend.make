# Empty compiler generated dependencies file for fulltext_test.
# This may be replaced when dependencies are built.
