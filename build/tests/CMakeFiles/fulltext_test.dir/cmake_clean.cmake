file(REMOVE_RECURSE
  "CMakeFiles/fulltext_test.dir/fulltext_test.cc.o"
  "CMakeFiles/fulltext_test.dir/fulltext_test.cc.o.d"
  "fulltext_test"
  "fulltext_test.pdb"
  "fulltext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fulltext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
