file(REMOVE_RECURSE
  "CMakeFiles/dblookup_test.dir/dblookup_test.cc.o"
  "CMakeFiles/dblookup_test.dir/dblookup_test.cc.o.d"
  "dblookup_test"
  "dblookup_test.pdb"
  "dblookup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblookup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
