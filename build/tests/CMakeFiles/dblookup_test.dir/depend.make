# Empty dependencies file for dblookup_test.
# This may be replaced when dependencies are built.
