file(REMOVE_RECURSE
  "CMakeFiles/folder_test.dir/folder_test.cc.o"
  "CMakeFiles/folder_test.dir/folder_test.cc.o.d"
  "folder_test"
  "folder_test.pdb"
  "folder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/folder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
