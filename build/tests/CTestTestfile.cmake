# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/formula_test[1]_include.cmake")
include("/root/repo/build/tests/view_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
include("/root/repo/build/tests/fulltext_test[1]_include.cmake")
include("/root/repo/build/tests/database_test[1]_include.cmake")
include("/root/repo/build/tests/replication_test[1]_include.cmake")
include("/root/repo/build/tests/mail_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/merge_test[1]_include.cmake")
include("/root/repo/build/tests/agent_test[1]_include.cmake")
include("/root/repo/build/tests/dblookup_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/folder_test[1]_include.cmake")
