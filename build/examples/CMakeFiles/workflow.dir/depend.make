# Empty dependencies file for workflow.
# This may be replaced when dependencies are built.
