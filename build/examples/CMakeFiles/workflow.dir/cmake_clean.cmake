file(REMOVE_RECURSE
  "CMakeFiles/workflow.dir/workflow.cpp.o"
  "CMakeFiles/workflow.dir/workflow.cpp.o.d"
  "workflow"
  "workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
