# Empty dependencies file for discussion.
# This may be replaced when dependencies are built.
