file(REMOVE_RECURSE
  "CMakeFiles/discussion.dir/discussion.cpp.o"
  "CMakeFiles/discussion.dir/discussion.cpp.o.d"
  "discussion"
  "discussion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discussion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
