file(REMOVE_RECURSE
  "CMakeFiles/bench_conflicts.dir/bench_conflicts.cpp.o"
  "CMakeFiles/bench_conflicts.dir/bench_conflicts.cpp.o.d"
  "bench_conflicts"
  "bench_conflicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
