file(REMOVE_RECURSE
  "CMakeFiles/bench_mail.dir/bench_mail.cpp.o"
  "CMakeFiles/bench_mail.dir/bench_mail.cpp.o.d"
  "bench_mail"
  "bench_mail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
