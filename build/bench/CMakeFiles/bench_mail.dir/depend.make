# Empty dependencies file for bench_mail.
# This may be replaced when dependencies are built.
