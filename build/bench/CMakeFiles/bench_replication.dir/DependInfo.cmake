
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_replication.cpp" "bench/CMakeFiles/bench_replication.dir/bench_replication.cpp.o" "gcc" "bench/CMakeFiles/bench_replication.dir/bench_replication.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/server/CMakeFiles/domino_server.dir/DependInfo.cmake"
  "/root/repo/build/src/repl/CMakeFiles/domino_repl.dir/DependInfo.cmake"
  "/root/repo/build/src/mail/CMakeFiles/domino_mail.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/domino_net.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/domino_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/domino_core.dir/DependInfo.cmake"
  "/root/repo/build/src/view/CMakeFiles/domino_view.dir/DependInfo.cmake"
  "/root/repo/build/src/formula/CMakeFiles/domino_formula.dir/DependInfo.cmake"
  "/root/repo/build/src/fulltext/CMakeFiles/domino_fulltext.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/domino_security.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/domino_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/domino_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/domino_model.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/domino_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
