# Empty dependencies file for bench_note_store.
# This may be replaced when dependencies are built.
