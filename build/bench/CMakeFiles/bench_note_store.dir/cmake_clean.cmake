file(REMOVE_RECURSE
  "CMakeFiles/bench_note_store.dir/bench_note_store.cpp.o"
  "CMakeFiles/bench_note_store.dir/bench_note_store.cpp.o.d"
  "bench_note_store"
  "bench_note_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_note_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
