file(REMOVE_RECURSE
  "CMakeFiles/bench_view_index.dir/bench_view_index.cpp.o"
  "CMakeFiles/bench_view_index.dir/bench_view_index.cpp.o.d"
  "bench_view_index"
  "bench_view_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_view_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
