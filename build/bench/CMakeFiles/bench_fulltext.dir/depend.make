# Empty dependencies file for bench_fulltext.
# This may be replaced when dependencies are built.
