file(REMOVE_RECURSE
  "CMakeFiles/bench_fulltext.dir/bench_fulltext.cpp.o"
  "CMakeFiles/bench_fulltext.dir/bench_fulltext.cpp.o.d"
  "bench_fulltext"
  "bench_fulltext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fulltext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
